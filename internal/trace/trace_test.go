package trace

import (
	"strings"
	"testing"

	"repro/internal/value"
)

func b(proc, port string, idx value.Index, v value.Value) Binding {
	return Binding{Proc: proc, Port: port, Index: idx, Value: v}
}

func sampleTrace() *Trace {
	v := value.Strs("a", "b")
	va := value.Strs("A", "B")
	t := &Trace{RunID: "r1", Workflow: "w"}
	_ = t.Xfer(XferEvent{From: b(WorkflowProc, "in", value.EmptyIndex, v), To: b("Q", "X", value.EmptyIndex, v)})
	_ = t.Xform(XformEvent{Proc: "Q",
		Inputs:  []Binding{b("Q", "X", value.Ix(0), v)},
		Outputs: []Binding{b("Q", "Y", value.Ix(0), va)}})
	_ = t.Xform(XformEvent{Proc: "Q",
		Inputs:  []Binding{b("Q", "X", value.Ix(1), v)},
		Outputs: []Binding{b("Q", "Y", value.Ix(1), va)}})
	_ = t.Xfer(XferEvent{From: b("Q", "Y", value.EmptyIndex, va), To: b(WorkflowProc, "out", value.EmptyIndex, va)})
	return t
}

func TestCounts(t *testing.T) {
	tr := sampleTrace()
	if tr.NumEvents() != 4 {
		t.Errorf("NumEvents = %d, want 4", tr.NumEvents())
	}
	// 2 xfers + 2 xforms × (1 in + 1 out) = 6 records.
	if tr.NumRecords() != 6 {
		t.Errorf("NumRecords = %d, want 6", tr.NumRecords())
	}
}

func TestBindingElement(t *testing.T) {
	v := value.List(value.Strs("a", "b"), value.Strs("c"))
	bd := Binding{Proc: "P", Port: "X", Index: value.Ix(0, 1), Value: v}
	el, err := bd.Element()
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := el.StringVal(); s != "b" {
		t.Errorf("Element = %s", el)
	}
	// With a context prefix, only the local part indexes into the value.
	sub := value.Strs("x", "y")
	bd = Binding{Proc: "C/Q", Port: "X", Index: value.Ix(3, 1), Value: sub, Ctx: 1}
	el, err = bd.Element()
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := el.StringVal(); s != "y" {
		t.Errorf("Element with ctx = %s", el)
	}
}

func TestBindingStringAndKey(t *testing.T) {
	bd := b(WorkflowProc, "in", value.Ix(2), value.Strs("a"))
	if got := bd.String(); got != "<workflow:in[2]>" {
		t.Errorf("String = %q", got)
	}
	k := bd.Key()
	if k.Proc != WorkflowProc || k.Port != "in" || k.Index != "[2]" {
		t.Errorf("Key = %+v", k)
	}
	if k.String() != "workflow:in[2]" {
		t.Errorf("Key.String = %q", k.String())
	}
}

func TestMultiCollector(t *testing.T) {
	a, c := &Trace{}, &Trace{}
	m := MultiCollector{a, c}
	ev := sampleTrace().Xforms[0]
	if err := m.Xform(ev); err != nil {
		t.Fatal(err)
	}
	if len(a.Xforms) != 1 || len(c.Xforms) != 1 {
		t.Error("MultiCollector did not fan out xform")
	}
	xe := sampleTrace().Xfers[0]
	if err := m.Xfer(xe); err != nil {
		t.Fatal(err)
	}
	if len(a.Xfers) != 1 || len(c.Xfers) != 1 {
		t.Error("MultiCollector did not fan out xfer")
	}
	if err := Discard.Xform(ev); err != nil {
		t.Error(err)
	}
	if err := Discard.Xfer(xe); err != nil {
		t.Error(err)
	}
}

func TestGraph(t *testing.T) {
	tr := sampleTrace()
	g := BuildGraph(tr)
	// Nodes: workflow:in[], Q:X[], Q:X[0], Q:X[1], Q:Y[0], Q:Y[1], Q:Y[],
	// workflow:out[] = 8.
	if g.NumNodes() != 8 {
		t.Errorf("NumNodes = %d, want 8", g.NumNodes())
	}
	if err := g.CheckAcyclic(); err != nil {
		t.Errorf("acyclic check failed: %v", err)
	}
	outKey := BindingKey{Proc: WorkflowProc, Port: "out", Index: "[]"}
	parents := g.Parents(outKey)
	if len(parents) != 1 || parents[0].Port != "Y" {
		t.Errorf("Parents(out) = %v", parents)
	}
	anc := g.Ancestors(BindingKey{Proc: "Q", Port: "Y", Index: "[0]"})
	if len(anc) != 1 || anc[0].Port != "X" || anc[0].Index.String() != "[0]" {
		t.Errorf("Ancestors = %v", anc)
	}
	if _, ok := g.Node(outKey); !ok {
		t.Error("Node lookup failed")
	}
	if g.NumArcs() != 4 {
		t.Errorf("NumArcs = %d, want 4", g.NumArcs())
	}
}

func TestGraphCycleDetection(t *testing.T) {
	tr := &Trace{}
	v := value.Str("x")
	_ = tr.Xfer(XferEvent{From: b("A", "y", value.EmptyIndex, v), To: b("B", "x", value.EmptyIndex, v)})
	_ = tr.Xfer(XferEvent{From: b("B", "x", value.EmptyIndex, v), To: b("A", "y", value.EmptyIndex, v)})
	g := BuildGraph(tr)
	if err := g.CheckAcyclic(); err == nil {
		t.Error("cycle not detected")
	}
}

func TestDOT(t *testing.T) {
	g := BuildGraph(sampleTrace())
	dot := g.DOT()
	if !strings.HasPrefix(dot, "digraph provenance {") {
		t.Errorf("DOT prefix: %q", dot[:30])
	}
	if !strings.Contains(dot, `"Q:Y[0]"`) || !strings.Contains(dot, "->") {
		t.Error("DOT missing expected nodes or arcs")
	}
	// Deterministic output.
	if g.DOT() != dot {
		t.Error("DOT not deterministic")
	}
}

func TestSortedEvents(t *testing.T) {
	tr := sampleTrace()
	// Reverse the xforms; sorting must normalize.
	tr.Xforms[0], tr.Xforms[1] = tr.Xforms[1], tr.Xforms[0]
	sorted := tr.SortedXforms()
	if sorted[0].Outputs[0].Index.String() != "[0]" {
		t.Errorf("SortedXforms order wrong: %v", sorted[0])
	}
	xf := tr.SortedXfers()
	if len(xf) != 2 || xf[0].String() > xf[1].String() {
		t.Errorf("SortedXfers order wrong")
	}
}

func TestEventStrings(t *testing.T) {
	tr := sampleTrace()
	s := tr.Xforms[0].String()
	if !strings.Contains(s, "<Q:X[0]>") || !strings.Contains(s, "->") {
		t.Errorf("XformEvent.String = %q", s)
	}
	s = tr.Xfers[0].String()
	if !strings.Contains(s, "<workflow:in[]>") {
		t.Errorf("XferEvent.String = %q", s)
	}
}
