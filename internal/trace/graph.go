package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Graph is the provenance graph of a trace (§2.4): nodes are the distinct
// bindings appearing in the trace, and there is an arc b_i → b_j iff some
// xform event has b_i among its inputs and b_j among its outputs, or some
// xfer event transfers b_i to b_j. The graph stores, for each node, its
// *parents* (the bindings it was derived from), because lineage queries
// traverse upwards.
type Graph struct {
	nodes   map[BindingKey]Binding
	parents map[BindingKey][]BindingKey
}

// BuildGraph materializes the provenance graph of a trace.
func BuildGraph(t *Trace) *Graph {
	g := &Graph{
		nodes:   make(map[BindingKey]Binding),
		parents: make(map[BindingKey][]BindingKey),
	}
	addNode := func(b Binding) BindingKey {
		k := b.Key()
		if _, ok := g.nodes[k]; !ok {
			g.nodes[k] = b
		}
		return k
	}
	for _, e := range t.Xforms {
		outKeys := make([]BindingKey, len(e.Outputs))
		for i, ob := range e.Outputs {
			outKeys[i] = addNode(ob)
		}
		for _, ib := range e.Inputs {
			ik := addNode(ib)
			for _, ok := range outKeys {
				g.parents[ok] = append(g.parents[ok], ik)
			}
		}
	}
	for _, e := range t.Xfers {
		fk := addNode(e.From)
		tk := addNode(e.To)
		g.parents[tk] = append(g.parents[tk], fk)
	}
	return g
}

// NumNodes returns the number of binding nodes.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumArcs returns the number of derivation arcs.
func (g *Graph) NumArcs() int {
	n := 0
	for _, ps := range g.parents {
		n += len(ps)
	}
	return n
}

// Node returns the binding stored under the given key.
func (g *Graph) Node(k BindingKey) (Binding, bool) {
	b, ok := g.nodes[k]
	return b, ok
}

// Parents returns the keys of the bindings the given node was derived from.
func (g *Graph) Parents(k BindingKey) []BindingKey { return g.parents[k] }

// Ancestors returns every binding reachable by traversing parent arcs from
// the given node (excluding the node itself), in no particular order.
func (g *Graph) Ancestors(k BindingKey) []Binding {
	seen := map[BindingKey]bool{k: true}
	var out []Binding
	stack := append([]BindingKey(nil), g.parents[k]...)
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[cur] {
			continue
		}
		seen[cur] = true
		out = append(out, g.nodes[cur])
		stack = append(stack, g.parents[cur]...)
	}
	return out
}

// CheckAcyclic verifies the provenance graph is a DAG, which every trace of
// a terminating dataflow run must be. It returns an error naming a node on a
// cycle if one exists.
func (g *Graph) CheckAcyclic() error {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[BindingKey]int, len(g.nodes))
	var visit func(k BindingKey) error
	visit = func(k BindingKey) error {
		switch color[k] {
		case grey:
			return fmt.Errorf("trace: provenance graph cycle through %s", k)
		case black:
			return nil
		}
		color[k] = grey
		for _, p := range g.parents[k] {
			if err := visit(p); err != nil {
				return err
			}
		}
		color[k] = black
		return nil
	}
	for k := range g.nodes {
		if err := visit(k); err != nil {
			return err
		}
	}
	return nil
}

// DOT renders the provenance graph in Graphviz DOT syntax with derivation
// arcs pointing from parents to children (the direction of dataflow).
func (g *Graph) DOT() string {
	keys := make([]BindingKey, 0, len(g.nodes))
	for k := range g.nodes {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })

	var sb strings.Builder
	sb.WriteString("digraph provenance {\n  rankdir=TB;\n  node [shape=box,fontsize=10];\n")
	id := make(map[BindingKey]int, len(keys))
	for i, k := range keys {
		id[k] = i
		fmt.Fprintf(&sb, "  n%d [label=%q];\n", i, k.String())
	}
	for _, k := range keys {
		ps := append([]BindingKey(nil), g.parents[k]...)
		sort.Slice(ps, func(i, j int) bool { return ps[i].String() < ps[j].String() })
		for _, p := range ps {
			fmt.Fprintf(&sb, "  n%d -> n%d;\n", id[p], id[k])
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
