package gen

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/lineage"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/value"
	"repro/internal/workflow"
)

func TestTestbedStructure(t *testing.T) {
	for _, l := range []int{1, 10, 75} {
		w := Testbed(l)
		if err := w.Validate(); err != nil {
			t.Fatalf("Testbed(%d) invalid: %v", l, err)
		}
		if got := w.NumNodes(); got != 2*l+2 {
			t.Errorf("Testbed(%d) has %d nodes, want %d", l, got, 2*l+2)
		}
		d, err := workflow.PropagateDepths(w)
		if err != nil {
			t.Fatal(err)
		}
		if dep, _ := d.Depth(workflow.PortID{Proc: "", Port: "product"}); dep != 2 {
			t.Errorf("Testbed(%d) product depth = %d, want 2", l, dep)
		}
		if m := d.IterationDepth(FinalName); m != 2 {
			t.Errorf("Testbed(%d) final iteration depth = %d, want 2", l, m)
		}
	}
	if Testbed(0).NumNodes() != 4 {
		t.Error("Testbed clamps l to at least 1")
	}
}

func TestTestbedExecutionAndRecordCount(t *testing.T) {
	reg := Registry()
	e := engine.New(reg)
	for _, cfg := range []struct{ l, d int }{{1, 2}, {5, 4}, {10, 10}} {
		w := Testbed(cfg.l)
		outs, tr, err := e.RunTrace(w, "r", TestbedInputs(cfg.d))
		if err != nil {
			t.Fatalf("l=%d d=%d: %v", cfg.l, cfg.d, err)
		}
		product := outs["product"]
		if product.Depth() != 2 || product.Len() != cfg.d {
			t.Fatalf("l=%d d=%d: product shape %s", cfg.l, cfg.d, product)
		}
		if product.Elems()[0].Len() != cfg.d {
			t.Fatalf("product inner size = %d, want %d", product.Elems()[0].Len(), cfg.d)
		}
		el := product.MustAt(value.Ix(1, 0))
		if s, _ := el.StringVal(); s != "item-1*item-0" {
			t.Errorf("product[1,0] = %q", s)
		}
		if got, want := tr.NumRecords(), TestbedRecords(cfg.l, cfg.d); got != want {
			t.Errorf("l=%d d=%d: records = %d, predicted %d", cfg.l, cfg.d, got, want)
		}
	}
}

func TestTestbedFineGrainedLineage(t *testing.T) {
	// The paper's testbed query: lin(⟨2TO1_FINAL:product[i,j]⟩, {LISTGEN_1})
	// must return exactly the two generator inputs — fine-grained through
	// the full chains.
	reg := Registry()
	e := engine.New(reg)
	w := Testbed(8)
	_, tr, err := e.RunTrace(w, "r", TestbedInputs(5))
	if err != nil {
		t.Fatal(err)
	}
	s, err := store.OpenMemory()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.StoreTrace(tr); err != nil {
		t.Fatal(err)
	}
	ni := lineage.NewNaive(s)
	ip, err := lineage.NewIndexProj(s, w)
	if err != nil {
		t.Fatal(err)
	}
	focus := lineage.NewFocus(ListGenName)
	a, err := ni.Lineage("r", FinalName, "product", value.Ix(3, 1), focus)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ip.Lineage("r", FinalName, "product", value.Ix(3, 1), focus)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatalf("NI %v != INDEXPROJ %v", a, b)
	}
	// The generator consumes the whole size atom: one coarse binding.
	want := []string{fmt.Sprintf("<%s:size[]>@r", ListGenName)}
	if keys := a.Keys(); !equalStrings(keys, want) {
		t.Errorf("testbed lineage = %v, want %v", keys, want)
	}

	// Focusing on chain heads shows the fine-grained element split:
	// product[3,1] depends on element 3 via branch A and element 1 via B.
	focus = lineage.NewFocus("A_001", "B_001")
	a, err = ni.Lineage("r", FinalName, "product", value.Ix(3, 1), focus)
	if err != nil {
		t.Fatal(err)
	}
	want = []string{"<A_001:x[3]>@r", "<B_001:x[1]>@r"}
	if keys := a.Keys(); !equalStrings(keys, want) {
		t.Errorf("chain-head lineage = %v, want %v", keys, want)
	}
	b, err = ip.Lineage("r", FinalName, "product", value.Ix(3, 1), focus)
	if err != nil || !a.Equal(b) {
		t.Errorf("INDEXPROJ chain-head = %v (err %v)", b, err)
	}
}

func TestTestbedErrors(t *testing.T) {
	reg := Registry()
	e := engine.New(reg)
	w := Testbed(2)
	if _, _, err := e.RunTrace(w, "r", map[string]value.Value{"ListSize": value.Str("x")}); err == nil {
		t.Error("non-integer size accepted")
	}
	if _, _, err := e.RunTrace(w, "r", map[string]value.Value{"ListSize": value.Int(-1)}); err == nil {
		t.Error("negative size accepted")
	}
}

func TestKEGGDeterminismAndOverlap(t *testing.T) {
	k := DefaultKEGG()
	a := k.GenePathways("mmu:20816")
	b := k.GenePathways("mmu:20816")
	if strings.Join(a, ",") != strings.Join(b, ",") {
		t.Error("GenePathways not deterministic")
	}
	if len(a) < 3 {
		t.Errorf("gene participates in %d pathways", len(a))
	}
	// Universal pathways make intersections non-empty.
	common := k.CommonPathways([]string{"mmu:1", "mmu:2", "mmu:3", "mmu:4"})
	if len(common) < 2 {
		t.Errorf("common pathways = %v", common)
	}
	union := k.PathwaysByGenes([]string{"mmu:1", "mmu:2"})
	if len(union) <= len(k.GenePathways("mmu:1")) {
		t.Errorf("union not larger than a single gene's set")
	}
	for i := 1; i < len(union); i++ {
		if union[i-1] >= union[i] {
			t.Error("union not sorted")
		}
	}
	if k.CommonPathways(nil) != nil {
		t.Error("common pathways of no genes should be empty")
	}
	if d := k.Description("path:00001"); !strings.Contains(d, "path:00001") {
		t.Errorf("Description = %q", d)
	}
	if d1, d2 := k.Description("path:00001"), k.Description("path:00001"); d1 != d2 {
		t.Error("Description not deterministic")
	}
}

func TestGKExecution(t *testing.T) {
	w := GenesToKegg()
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	e := engine.New(Registry())
	outs, tr, err := e.RunTrace(w, "gk1", GKInputs(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	ppg := outs["paths_per_gene"]
	if ppg.Depth() != 2 || ppg.Len() != 2 {
		t.Fatalf("paths_per_gene shape = %s", ppg)
	}
	common := outs["commonPathways"]
	if common.Depth() != 1 || common.Len() < 2 {
		t.Fatalf("commonPathways = %s", common)
	}
	// Descriptions, not raw IDs.
	if s, _ := common.Elems()[0].StringVal(); !strings.Contains(s, "pathway") {
		t.Errorf("commonPathways element = %q", s)
	}
	// get_pathways_by_genes iterates once per sub-list.
	n := 0
	for _, ev := range tr.Xforms {
		if ev.Proc == "get_pathways_by_genes" {
			n++
		}
	}
	if n != 2 {
		t.Errorf("get_pathways_by_genes activations = %d, want 2", n)
	}
}

func TestGKMotivatingLineageQuery(t *testing.T) {
	// "Which of the input lists of genes is involved in this pathway?" —
	// the pathways in sub-list i of paths_per_gene depend only on sub-list i
	// of the input, while commonPathways depends on all input genes.
	w := GenesToKegg()
	e := engine.New(Registry())
	_, tr, err := e.RunTrace(w, "gk1", GKInputs(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	s, err := store.OpenMemory()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.StoreTrace(tr); err != nil {
		t.Fatal(err)
	}
	ip, err := lineage.NewIndexProj(s, w)
	if err != nil {
		t.Fatal(err)
	}
	ni := lineage.NewNaive(s)
	focus := lineage.NewFocus("get_pathways_by_genes")
	for i := 0; i < 3; i++ {
		res, err := ip.Lineage("gk1", trace.WorkflowProc, "paths_per_gene", value.Ix(i, 0), focus)
		if err != nil {
			t.Fatal(err)
		}
		want := []string{fmt.Sprintf("<get_pathways_by_genes:genes_id_list[%d]>@gk1", i)}
		if keys := res.Keys(); !equalStrings(keys, want) {
			t.Errorf("lineage of paths_per_gene[%d,0] = %v, want %v", i, keys, want)
		}
		niRes, err := ni.Lineage("gk1", trace.WorkflowProc, "paths_per_gene", value.Ix(i, 0), focus)
		if err != nil || !res.Equal(niRes) {
			t.Errorf("NI disagrees at sub-list %d: %v vs %v (err %v)", i, niRes, res, err)
		}
		// The answer's element is exactly input sub-list i.
		el, err := res.Entries()[0].Element()
		if err != nil {
			t.Fatal(err)
		}
		wantList := GKInputs(3, 2)["list_of_geneIDList"].Elems()[i]
		if !value.Equal(el, wantList) {
			t.Errorf("sub-list %d element = %s, want %s", i, el, wantList)
		}
	}
	// commonPathways goes through the flatten: lineage collapses to the
	// whole input on the right branch.
	focus = lineage.NewFocus("merge_gene_lists")
	res, err := ip.Lineage("gk1", trace.WorkflowProc, "commonPathways", value.Ix(0), focus)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"<merge_gene_lists:lists[]>@gk1"}
	if keys := res.Keys(); !equalStrings(keys, want) {
		t.Errorf("commonPathways lineage = %v, want %v", keys, want)
	}
}

func TestPubMedDeterminism(t *testing.T) {
	pm := DefaultPubMed()
	ids1 := pm.Search("apoptosis", 5)
	ids2 := pm.Search("apoptosis", 5)
	if strings.Join(ids1, ",") != strings.Join(ids2, ",") {
		t.Error("Search not deterministic")
	}
	if len(ids1) != 5 {
		t.Errorf("Search returned %d ids", len(ids1))
	}
	other := pm.Search("kinase", 5)
	if strings.Join(ids1, ",") == strings.Join(other, ",") {
		t.Error("different queries return identical results")
	}
	text := pm.Abstract(ids1[0])
	if text != pm.Abstract(ids1[0]) {
		t.Error("Abstract not deterministic")
	}
	if len(strings.Fields(text)) < 10 {
		t.Errorf("abstract too short: %q", text)
	}
	if !pm.IsProtein(pm.dict[0]) || pm.IsProtein("the") {
		t.Error("IsProtein misclassifies")
	}
	if got := pm.Search("q", -3); len(got) != 0 {
		t.Errorf("negative max = %v", got)
	}
}

func TestPDExecution(t *testing.T) {
	w := ProteinDiscovery()
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if w.NumNodes() < 20 {
		t.Errorf("PD has only %d processors; expected a long workflow", w.NumNodes())
	}
	e := engine.New(Registry())
	outs, tr, err := e.RunTrace(w, "pd1", PDInputs("apoptosis signaling", 6))
	if err != nil {
		t.Fatal(err)
	}
	prots := outs["discovered_proteins"]
	if prots.Depth() != 1 {
		t.Fatalf("discovered_proteins = %s", prots)
	}
	if prots.Len() == 0 {
		t.Fatal("no proteins discovered; synthetic corpus must contain dictionary hits")
	}
	if s, _ := prots.Elems()[0].StringVal(); !strings.Contains(s, "UP") {
		t.Errorf("protein entry = %q", s)
	}
	ev := outs["evidence"]
	if ev.Depth() != 2 || ev.Len() != 6 {
		t.Fatalf("evidence shape = %s (want one sub-list per abstract)", ev)
	}
	// Per-abstract steps iterate once per abstract.
	n := 0
	for _, e := range tr.Xforms {
		if e.Proc == "fetch_abstract" {
			n++
		}
	}
	if n != 6 {
		t.Errorf("fetch_abstract activations = %d, want 6", n)
	}
}

func TestPDLineage(t *testing.T) {
	// Evidence sub-list i traces back to exactly abstract i.
	w := ProteinDiscovery()
	e := engine.New(Registry())
	_, tr, err := e.RunTrace(w, "pd1", PDInputs("kinase", 4))
	if err != nil {
		t.Fatal(err)
	}
	s, err := store.OpenMemory()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.StoreTrace(tr); err != nil {
		t.Fatal(err)
	}
	ni := lineage.NewNaive(s)
	ip, err := lineage.NewIndexProj(s, w)
	if err != nil {
		t.Fatal(err)
	}
	focus := lineage.NewFocus("fetch_abstract")
	for i := 0; i < 4; i++ {
		a, err := ni.Lineage("pd1", trace.WorkflowProc, "evidence", value.Ix(i, 0), focus)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ip.Lineage("pd1", trace.WorkflowProc, "evidence", value.Ix(i, 0), focus)
		if err != nil || !a.Equal(b) {
			t.Fatalf("PD lineage mismatch at %d: NI %v vs IP %v (err %v)", i, a, b, err)
		}
		want := []string{fmt.Sprintf("<fetch_abstract:x[%d]>@pd1", i)}
		if keys := a.Keys(); !equalStrings(keys, want) {
			t.Errorf("evidence[%d] lineage = %v, want %v", i, keys, want)
		}
	}
	// The merged output depends on all abstracts (granularity collapse).
	res, err := ip.Lineage("pd1", trace.WorkflowProc, "discovered_proteins", value.Ix(0), lineage.NewFocus("merge_abstract_hits"))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"<merge_abstract_hits:nested[]>@pd1"}
	if keys := res.Keys(); !equalStrings(keys, want) {
		t.Errorf("merged lineage = %v, want %v", keys, want)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
