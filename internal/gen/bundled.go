package gen

import "repro/internal/workflow"

// BundledWorkflows returns the workload workflows the CLIs register out of
// the box: the testbed at the given chain length, GK and PD.
func BundledWorkflows(testbedL int) []*workflow.Workflow {
	return []*workflow.Workflow{Testbed(testbedL), GenesToKegg(), ProteinDiscovery()}
}
