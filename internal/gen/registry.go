package gen

import (
	"repro/internal/engine"
)

// Registry returns an engine registry with every workload behaviour
// registered: the synthetic testbed, GK over a default synthetic KEGG, and
// PD over a default synthetic PubMed.
func Registry() *engine.Registry {
	reg := engine.NewRegistry()
	RegisterTestbed(reg)
	RegisterGK(reg, DefaultKEGG())
	RegisterPD(reg, DefaultPubMed())
	return reg
}
