// Package gen builds the workloads of the paper's evaluation (§4): the
// synthetic testbed dataflow family of Fig. 5 (parameterized by chain length
// l and list size d), and reconstructions of the two real-life workflows —
// genes2Kegg (GK, Fig. 1) and BioAID protein discovery (PD) — with
// deterministic synthetic services standing in for KEGG and PubMed (see
// DESIGN.md §5 for the substitution rationale).
package gen

import (
	"fmt"
	"strconv"

	"repro/internal/engine"
	"repro/internal/value"
	"repro/internal/workflow"
)

// Testbed names used by the benchmark harness and the paper's query:
// lin(⟨2TO1_FINAL:product[p]⟩, {LISTGEN_1}).
const (
	ListGenName = "LISTGEN_1"
	FinalName   = "2TO1_FINAL"
)

// Testbed builds the synthetic dataflow of Fig. 5: a list generator feeding
// two parallel linear chains of l one-to-one processors each, joined by a
// final binary cross product. All chain processors are one-to-one, so
// fine-grained lineage is preserved end to end while every query requires a
// full traversal of a length-l path. The list size d is controlled at run
// time through the ListSize input port.
func Testbed(l int) *workflow.Workflow {
	if l < 1 {
		l = 1
	}
	w := workflow.New(fmt.Sprintf("testbed_l%d", l))
	w.AddInput("ListSize", 0)
	w.AddOutput("product", 2)

	w.AddProcessor(ListGenName, "tb_listgen",
		[]workflow.Port{workflow.In("size", 0)},
		[]workflow.Port{workflow.Out("list", 1)})
	w.Connect("", "ListSize", ListGenName, "size")

	prev := map[string]workflow.PortID{
		"A": {Proc: ListGenName, Port: "list"},
		"B": {Proc: ListGenName, Port: "list"},
	}
	for _, branch := range []string{"A", "B"} {
		for i := 1; i <= l; i++ {
			name := fmt.Sprintf("%s_%03d", branch, i)
			w.AddProcessor(name, "tb_step",
				[]workflow.Port{workflow.In("x", 0)},
				[]workflow.Port{workflow.Out("y", 0)})
			w.Connect(prev[branch].Proc, prev[branch].Port, name, "x")
			prev[branch] = workflow.PortID{Proc: name, Port: "y"}
		}
	}

	w.AddProcessor(FinalName, "tb_cross",
		[]workflow.Port{workflow.In("left", 0), workflow.In("right", 0)},
		[]workflow.Port{workflow.Out("product", 0)})
	w.Connect(prev["A"].Proc, prev["A"].Port, FinalName, "left")
	w.Connect(prev["B"].Proc, prev["B"].Port, FinalName, "right")
	w.Connect(FinalName, "product", "", "product")
	return w
}

// TestbedInputs binds the ListSize port for a run with list size d.
func TestbedInputs(d int) map[string]value.Value {
	return map[string]value.Value{"ListSize": value.Int(int64(d))}
}

// TestbedRecords predicts the number of trace-database records one run of
// Testbed(l) with list size d produces: 2l+4 xfer rows, 2 rows for the list
// generator's single activation, 2d rows per chain processor (d one-to-one
// activations), and 3d² rows for the final cross product (d² activations of
// a 2-in/1-out processor). This closed form is validated by tests and
// regenerates the structure of Table 1.
func TestbedRecords(l, d int) int {
	return (2*l + 4) + 2 + 4*l*d + 3*d*d
}

// RegisterTestbed adds the testbed's processor behaviours to a registry.
func RegisterTestbed(reg *engine.Registry) {
	reg.Register("tb_listgen", func(args []value.Value) ([]value.Value, error) {
		n, ok := args[0].IntVal()
		if !ok {
			return nil, fmt.Errorf("tb_listgen: size must be an integer, got %s", args[0])
		}
		if n < 0 {
			return nil, fmt.Errorf("tb_listgen: negative size %d", n)
		}
		elems := make([]value.Value, n)
		for i := range elems {
			elems[i] = value.Str("item-" + strconv.Itoa(i))
		}
		return []value.Value{value.List(elems...)}, nil
	})
	// One-to-one step: a cheap, structure-preserving transformation (the
	// paper's chains simply propagate list copies).
	reg.Register("tb_step", func(args []value.Value) ([]value.Value, error) {
		return []value.Value{args[0]}, nil
	})
	reg.Register("tb_cross", func(args []value.Value) ([]value.Value, error) {
		a, _ := args[0].StringVal()
		b, _ := args[1].StringVal()
		return []value.Value{value.Str(a + "*" + b)}, nil
	})
}
