package gen

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// KEGG is a deterministic synthetic stand-in for the KEGG pathway database
// used by the genes2Kegg workflow (Fig. 1). Each gene participates in a
// hash-derived subset of a fixed pathway pool plus a small set of universal
// pathways, so that (i) per-gene pathway sets are stable across runs,
// (ii) different genes share some pathways (realistic overlap), and
// (iii) the "common pathways" intersection of the workflow's right branch is
// never empty. Lineage experiments only depend on the collection structure
// this produces, not on biological content (DESIGN.md §5).
type KEGG struct {
	poolSize  int
	fanOut    int
	universal int
}

// NewKEGG returns a synthetic KEGG with the given pathway pool size, per-gene
// fan-out and number of universal pathways.
func NewKEGG(poolSize, fanOut, universal int) *KEGG {
	if poolSize < 1 {
		poolSize = 1
	}
	if fanOut < 0 {
		fanOut = 0
	}
	if universal < 0 {
		universal = 0
	}
	return &KEGG{poolSize: poolSize, fanOut: fanOut, universal: universal}
}

// DefaultKEGG mirrors the observable behaviour of the paper's example:
// a handful of pathways per gene with two shared by every gene.
func DefaultKEGG() *KEGG { return NewKEGG(400, 5, 2) }

func pathwayID(n int) string { return fmt.Sprintf("path:%05d", n) }

// GenePathways returns the sorted pathway IDs a gene participates in.
func (k *KEGG) GenePathways(gene string) []string {
	set := make(map[int]bool, k.fanOut+k.universal)
	for u := 0; u < k.universal; u++ {
		set[k.poolSize+u] = true
	}
	h := fnv.New64a()
	for i := 0; i < k.fanOut; i++ {
		h.Reset()
		fmt.Fprintf(h, "%s#%d", gene, i)
		set[int(h.Sum64()%uint64(k.poolSize))] = true
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, pathwayID(n))
	}
	sort.Strings(out)
	return out
}

// PathwaysByGenes returns the sorted union of the pathways of a list of
// genes — the behaviour of the get_pathways_by_genes service.
func (k *KEGG) PathwaysByGenes(genes []string) []string {
	set := make(map[string]bool)
	for _, g := range genes {
		for _, p := range k.GenePathways(g) {
			set[p] = true
		}
	}
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// CommonPathways returns the sorted intersection of the pathways of a list
// of genes — the pathways in which *all* the genes are involved.
func (k *KEGG) CommonPathways(genes []string) []string {
	if len(genes) == 0 {
		return nil
	}
	counts := make(map[string]int)
	for _, g := range genes {
		for _, p := range k.GenePathways(g) {
			counts[p]++
		}
	}
	var out []string
	for p, n := range counts {
		if n == len(genes) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// Description returns a human-readable pathway description — the behaviour
// of the getPathwayDescriptions service.
func (k *KEGG) Description(pathway string) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "desc:%s", pathway)
	kinds := []string{"signaling", "metabolism", "biosynthesis", "degradation", "repair"}
	return fmt.Sprintf("%s %s pathway", pathway, kinds[h.Sum64()%uint64(len(kinds))])
}
