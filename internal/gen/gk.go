package gen

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/value"
	"repro/internal/workflow"
)

// GenesToKegg reconstructs the genes2Kegg (GK) bioinformatics workflow of
// Fig. 1. The workflow takes a nested list of gene IDs and produces:
//
//   - paths_per_gene: one list of pathway descriptions per input gene list
//     (left branch: get_pathways_by_genes iterates over the sub-lists, so
//     the implicit iteration keeps per-sub-list lineage);
//   - commonPathways: one flat list of descriptions of the pathways shared
//     by *all* input genes (right branch: the input is flattened first, a
//     many-to-many step that deliberately collapses lineage granularity).
//
// The paper's motivating query — "which of the input gene lists is involved
// in this pathway?" — is lin(⟨workflow:paths_per_gene[i,j]⟩,
// {get_pathways_by_genes}) and returns exactly sub-list i.
func GenesToKegg() *workflow.Workflow {
	w := workflow.New("genes2Kegg")
	w.AddInput("list_of_geneIDList", 2)
	w.AddOutput("paths_per_gene", 2)
	w.AddOutput("commonPathways", 1)

	// Left branch: per-sub-list pathways.
	w.AddProcessor("get_pathways_by_genes", "gk_pathways_by_genes",
		[]workflow.Port{workflow.In("genes_id_list", 1)},
		[]workflow.Port{workflow.Out("return", 1)})
	w.AddProcessor("getPathwayDescriptions", "gk_pathway_descriptions",
		[]workflow.Port{workflow.In("string", 1)},
		[]workflow.Port{workflow.Out("return", 1)})
	w.Connect("", "list_of_geneIDList", "get_pathways_by_genes", "genes_id_list")
	w.Connect("get_pathways_by_genes", "return", "getPathwayDescriptions", "string")
	w.Connect("getPathwayDescriptions", "return", "", "paths_per_gene")

	// Right branch: flatten, then pathways common to every gene.
	w.AddProcessor("merge_gene_lists", "gk_flatten",
		[]workflow.Port{workflow.In("lists", 2)},
		[]workflow.Port{workflow.Out("flat", 1)})
	w.AddProcessor("get_common_pathways", "gk_common_pathways",
		[]workflow.Port{workflow.In("genes", 1)},
		[]workflow.Port{workflow.Out("return", 1)})
	w.AddProcessor("getCommonDescriptions", "gk_pathway_descriptions",
		[]workflow.Port{workflow.In("string", 1)},
		[]workflow.Port{workflow.Out("return", 1)})
	w.Connect("", "list_of_geneIDList", "merge_gene_lists", "lists")
	w.Connect("merge_gene_lists", "flat", "get_common_pathways", "genes")
	w.Connect("get_common_pathways", "return", "getCommonDescriptions", "string")
	w.Connect("getCommonDescriptions", "return", "", "commonPathways")
	return w
}

// GKInputs builds a nested gene-ID list with nLists sub-lists of
// genesPerList synthetic mouse gene IDs, in the style of the paper's example
// value [[mmu:20816, mmu:26416], [mmu:328788]].
func GKInputs(nLists, genesPerList int) map[string]value.Value {
	lists := make([]value.Value, nLists)
	id := 20000
	for i := range lists {
		genes := make([]value.Value, genesPerList)
		for j := range genes {
			genes[j] = value.Str(fmt.Sprintf("mmu:%d", id))
			id += 137
		}
		lists[i] = value.List(genes...)
	}
	return map[string]value.Value{"list_of_geneIDList": value.List(lists...)}
}

// RegisterGK adds the GK service behaviours, backed by a synthetic KEGG, to
// a registry.
func RegisterGK(reg *engine.Registry, kegg *KEGG) {
	reg.Register("gk_pathways_by_genes", func(args []value.Value) ([]value.Value, error) {
		genes, err := stringList(args[0])
		if err != nil {
			return nil, fmt.Errorf("gk_pathways_by_genes: %w", err)
		}
		return []value.Value{strs(kegg.PathwaysByGenes(genes))}, nil
	})
	reg.Register("gk_common_pathways", func(args []value.Value) ([]value.Value, error) {
		genes, err := stringList(args[0])
		if err != nil {
			return nil, fmt.Errorf("gk_common_pathways: %w", err)
		}
		return []value.Value{strs(kegg.CommonPathways(genes))}, nil
	})
	reg.Register("gk_pathway_descriptions", func(args []value.Value) ([]value.Value, error) {
		paths, err := stringList(args[0])
		if err != nil {
			return nil, fmt.Errorf("gk_pathway_descriptions: %w", err)
		}
		out := make([]string, len(paths))
		for i, p := range paths {
			out[i] = kegg.Description(p)
		}
		return []value.Value{strs(out)}, nil
	})
	reg.Register("gk_flatten", func(args []value.Value) ([]value.Value, error) {
		flat, err := value.Flatten(args[0])
		if err != nil {
			return nil, fmt.Errorf("gk_flatten: %w", err)
		}
		return []value.Value{flat}, nil
	})
}

// stringList extracts a flat list of string atoms.
func stringList(v value.Value) ([]string, error) {
	if !v.IsList() {
		return nil, fmt.Errorf("expected a list, got %s", v)
	}
	out := make([]string, 0, v.Len())
	for i, e := range v.Elems() {
		s, ok := e.StringVal()
		if !ok {
			return nil, fmt.Errorf("element %d is not a string: %s", i, e)
		}
		out = append(out, s)
	}
	return out, nil
}

func strs(ss []string) value.Value { return value.Strs(ss...) }
