package gen

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"repro/internal/engine"
	"repro/internal/value"
	"repro/internal/workflow"
)

// ProteinDiscovery reconstructs the BioAID protein-discovery (PD) workflow
// used in §4 as the "long-path" real-life example: a PubMed search feeds a
// long pipeline of per-abstract text-processing steps, a dictionary-based
// protein-name matcher, per-abstract ranking, and a final merge. The paper
// uses PD for its path length (its exact processor roster is not given);
// the reconstruction preserves the traits the experiments depend on: a
// chain an order of magnitude longer than GK's, per-element granularity
// along most of it, and a granularity-collapsing merge near the output.
func ProteinDiscovery() *workflow.Workflow {
	w := workflow.New("protein_discovery")
	w.AddInput("query", 0)
	w.AddInput("max_abstracts", 0)
	w.AddOutput("discovered_proteins", 1)
	w.AddOutput("evidence", 2)

	one := func(name, typ string) {
		w.AddProcessor(name, typ,
			[]workflow.Port{workflow.In("x", 0)},
			[]workflow.Port{workflow.Out("y", 0)})
	}

	w.AddProcessor("search_pubmed", "pd_search",
		[]workflow.Port{workflow.In("query", 0), workflow.In("max", 0)},
		[]workflow.Port{workflow.Out("ids", 1)})
	w.Connect("", "query", "search_pubmed", "query")
	w.Connect("", "max_abstracts", "search_pubmed", "max")

	// Per-abstract text pipeline: every step is one-to-one, preserving
	// per-abstract lineage through the implicit iteration.
	perAbstract := []string{
		"fetch_abstract", "strip_xml", "decode_entities", "normalize_whitespace",
		"strip_references", "lowercase", "expand_abbreviations", "remove_punctuation",
		"normalize_greek", "mask_numbers", "segment_sentences_flat", "trim_boilerplate",
	}
	prevProc, prevPort := "search_pubmed", "ids"
	for _, name := range perAbstract {
		one(name, "pd_"+name)
		w.Connect(prevProc, prevPort, name, "x")
		prevProc, prevPort = name, "y"
	}

	// Tokenization lifts each abstract to a token list (depth grows by one).
	w.AddProcessor("tokenize", "pd_tokenize",
		[]workflow.Port{workflow.In("text", 0)},
		[]workflow.Port{workflow.Out("tokens", 1)})
	w.Connect(prevProc, prevPort, "tokenize", "text")

	// Per-abstract collection steps (declared depth 1, iterated once).
	perTokenList := []string{
		"filter_stopwords", "stem_tokens", "match_proteins", "dedupe_hits",
		"score_hits", "rank_hits", "take_top_hits",
	}
	prevProc, prevPort = "tokenize", "tokens"
	for _, name := range perTokenList {
		w.AddProcessor(name, "pd_"+name,
			[]workflow.Port{workflow.In("items", 1)},
			[]workflow.Port{workflow.Out("out", 1)})
		w.Connect(prevProc, prevPort, name, "items")
		prevProc, prevPort = name, "out"
	}
	// Per-abstract evidence is exposed before the merge.
	w.Connect(prevProc, prevPort, "", "evidence")

	// Merge across abstracts (granularity-collapsing), then per-protein
	// formatting.
	w.AddProcessor("merge_abstract_hits", "pd_flatten",
		[]workflow.Port{workflow.In("nested", 2)},
		[]workflow.Port{workflow.Out("flat", 1)})
	w.Connect(prevProc, prevPort, "merge_abstract_hits", "nested")
	w.AddProcessor("dedupe_proteins", "pd_dedupe_proteins",
		[]workflow.Port{workflow.In("items", 1)},
		[]workflow.Port{workflow.Out("out", 1)})
	w.Connect("merge_abstract_hits", "flat", "dedupe_proteins", "items")
	one("format_protein", "pd_format_protein")
	w.Connect("dedupe_proteins", "out", "format_protein", "x")
	one("attach_uniprot_id", "pd_attach_uniprot_id")
	w.Connect("format_protein", "y", "attach_uniprot_id", "x")
	w.Connect("attach_uniprot_id", "y", "", "discovered_proteins")
	return w
}

// PDInputs binds the PD workflow's query and abstract budget.
func PDInputs(query string, maxAbstracts int) map[string]value.Value {
	return map[string]value.Value{
		"query":         value.Str(query),
		"max_abstracts": value.Int(int64(maxAbstracts)),
	}
}

// PubMed is a deterministic synthetic literature corpus: abstract IDs and
// texts are derived from the query by hashing, and texts mention proteins
// drawn from a fixed synthetic dictionary so the matcher finds realistic,
// overlapping hit sets.
type PubMed struct {
	dict []string
}

// NewPubMed builds a corpus whose abstracts mention the given number of
// distinct synthetic protein names.
func NewPubMed(dictSize int) *PubMed {
	if dictSize < 1 {
		dictSize = 1
	}
	dict := make([]string, dictSize)
	for i := range dict {
		dict[i] = fmt.Sprintf("prot%c%02d", 'A'+i%26, i)
	}
	return &PubMed{dict: dict}
}

// DefaultPubMed returns the corpus used by the examples and benchmarks.
func DefaultPubMed() *PubMed { return NewPubMed(40) }

func hash64(parts ...string) uint64 {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// Search returns up to max abstract IDs matching a query.
func (pm *PubMed) Search(query string, max int) []string {
	if max < 0 {
		max = 0
	}
	out := make([]string, max)
	for i := range out {
		out[i] = fmt.Sprintf("PMID:%07d", hash64(query, fmt.Sprint(i))%9000000+1000000)
	}
	return out
}

// Abstract returns the synthetic text of an abstract: filler words
// interleaved with protein mentions selected by the ID's hash.
func (pm *PubMed) Abstract(id string) string {
	filler := []string{"the", "binding", "of", "receptor", "complex", "in", "cells",
		"was", "observed", "during", "activation", "and", "signal", "response"}
	h := hash64(id)
	var sb strings.Builder
	nWords := 20 + int(h%20)
	for i := 0; i < nWords; i++ {
		if i > 0 {
			sb.WriteByte(' ')
		}
		wh := hash64(id, "w", fmt.Sprint(i))
		if wh%4 == 0 {
			sb.WriteString(pm.dict[wh%uint64(len(pm.dict))])
		} else {
			sb.WriteString(filler[wh%uint64(len(filler))])
		}
	}
	return sb.String()
}

// IsProtein reports whether a token is in the protein dictionary.
func (pm *PubMed) IsProtein(token string) bool {
	for _, p := range pm.dict {
		if strings.EqualFold(p, token) {
			return true
		}
	}
	return false
}

// RegisterPD adds the PD service behaviours, backed by a synthetic PubMed,
// to a registry.
func RegisterPD(reg *engine.Registry, pm *PubMed) {
	str := func(v value.Value) string { s, _ := v.StringVal(); return s }

	reg.Register("pd_search", func(args []value.Value) ([]value.Value, error) {
		max, ok := args[1].IntVal()
		if !ok {
			return nil, fmt.Errorf("pd_search: max must be an integer")
		}
		return []value.Value{value.Strs(pm.Search(str(args[0]), int(max))...)}, nil
	})
	reg.Register("pd_fetch_abstract", func(args []value.Value) ([]value.Value, error) {
		return []value.Value{value.Str(pm.Abstract(str(args[0])))}, nil
	})

	// The cleanup chain: cheap deterministic string rewrites. Each one is a
	// distinct registered behaviour so traces show distinct processor types.
	identityish := map[string]func(string) string{
		"pd_strip_xml":              func(s string) string { return strings.ReplaceAll(s, "<", "(") },
		"pd_decode_entities":        func(s string) string { return strings.ReplaceAll(s, "&amp;", "&") },
		"pd_normalize_whitespace":   func(s string) string { return strings.Join(strings.Fields(s), " ") },
		"pd_strip_references":       func(s string) string { return strings.TrimSuffix(s, " [1]") },
		"pd_lowercase":              strings.ToLower,
		"pd_expand_abbreviations":   func(s string) string { return strings.ReplaceAll(s, " sig ", " signal ") },
		"pd_remove_punctuation":     func(s string) string { return strings.Map(stripPunct, s) },
		"pd_normalize_greek":        func(s string) string { return strings.ReplaceAll(s, "α", "alpha") },
		"pd_mask_numbers":           func(s string) string { return s },
		"pd_segment_sentences_flat": func(s string) string { return s },
		"pd_trim_boilerplate":       strings.TrimSpace,
	}
	for typ, fn := range identityish {
		fn := fn
		reg.Register(typ, func(args []value.Value) ([]value.Value, error) {
			return []value.Value{value.Str(fn(str(args[0])))}, nil
		})
	}

	reg.Register("pd_tokenize", func(args []value.Value) ([]value.Value, error) {
		return []value.Value{value.Strs(strings.Fields(str(args[0]))...)}, nil
	})

	listOp := func(fn func([]string) []string) engine.Func {
		return func(args []value.Value) ([]value.Value, error) {
			items, err := stringList(args[0])
			if err != nil {
				return nil, err
			}
			return []value.Value{value.Strs(fn(items)...)}, nil
		}
	}
	stop := map[string]bool{"the": true, "of": true, "in": true, "was": true, "and": true}
	reg.Register("pd_filter_stopwords", listOp(func(items []string) []string {
		out := items[:0:0]
		for _, t := range items {
			if !stop[t] {
				out = append(out, t)
			}
		}
		return out
	}))
	reg.Register("pd_stem_tokens", listOp(func(items []string) []string {
		out := make([]string, len(items))
		for i, t := range items {
			out[i] = strings.TrimSuffix(t, "s")
		}
		return out
	}))
	reg.Register("pd_match_proteins", listOp(func(items []string) []string {
		var out []string
		for _, t := range items {
			if pm.IsProtein(t) {
				out = append(out, t)
			}
		}
		return out
	}))
	reg.Register("pd_dedupe_hits", listOp(dedupe))
	reg.Register("pd_score_hits", listOp(func(items []string) []string {
		out := make([]string, len(items))
		for i, t := range items {
			out[i] = fmt.Sprintf("%s:%d", t, hash64(t)%100)
		}
		return out
	}))
	reg.Register("pd_rank_hits", listOp(func(items []string) []string {
		out := append([]string(nil), items...)
		sort.Strings(out)
		return out
	}))
	reg.Register("pd_take_top_hits", listOp(func(items []string) []string {
		if len(items) > 5 {
			items = items[:5]
		}
		return items
	}))
	reg.Register("pd_flatten", func(args []value.Value) ([]value.Value, error) {
		flat, err := value.Flatten(args[0])
		if err != nil {
			return nil, fmt.Errorf("pd_flatten: %w", err)
		}
		return []value.Value{flat}, nil
	})
	reg.Register("pd_dedupe_proteins", listOp(dedupe))
	reg.Register("pd_format_protein", func(args []value.Value) ([]value.Value, error) {
		return []value.Value{value.Str("protein " + str(args[0]))}, nil
	})
	reg.Register("pd_attach_uniprot_id", func(args []value.Value) ([]value.Value, error) {
		s := str(args[0])
		return []value.Value{value.Str(fmt.Sprintf("%s (UP%06d)", s, hash64(s)%1000000))}, nil
	})
}

func stripPunct(r rune) rune {
	switch r {
	case '.', ',', ';', '(', ')', '[', ']':
		return -1
	}
	return r
}

func dedupe(items []string) []string {
	seen := make(map[string]bool, len(items))
	var out []string
	for _, t := range items {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}
