package resilience

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestPolicyDoRetries(t *testing.T) {
	calls := 0
	err := Policy{Retries: 3, Backoff: time.Microsecond}.Do(context.Background(), func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 {
		t.Fatalf("Do made %d calls, want 3", calls)
	}
}

func TestPolicyDoExhaustsBudget(t *testing.T) {
	calls := 0
	boom := errors.New("boom")
	err := Policy{Retries: 2, Backoff: time.Microsecond}.Do(context.Background(), func() error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Do = %v, want %v", err, boom)
	}
	if calls != 3 {
		t.Fatalf("Do made %d calls, want 3 (1 + 2 retries)", calls)
	}
}

func TestPolicyDoRespectsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	boom := errors.New("boom")
	err := Policy{Retries: 100, Backoff: time.Millisecond}.Do(ctx, func() error {
		calls++
		cancel()
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Do = %v, want the op's error", err)
	}
	if calls != 1 {
		t.Fatalf("Do kept retrying after cancellation: %d calls", calls)
	}
}

// fakeClock drives a breaker deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeBreaker(cfg BreakerConfig) (*Breaker, *fakeClock) {
	b := NewBreaker(cfg)
	c := &fakeClock{t: time.Unix(1000, 0)}
	b.SetClock(c.now)
	return b, c
}

func TestBreakerTripsAndRecovers(t *testing.T) {
	b, clk := newFakeBreaker(BreakerConfig{FailureThreshold: 3, OpenFor: time.Second})
	boom := errors.New("boom")
	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("breaker rejected call %d while closed", i)
		}
		b.Record(0, boom)
	}
	if got := b.State(); got != StateOpen {
		t.Fatalf("state after %d failures = %s, want open", 3, got)
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a call")
	}
	clk.advance(time.Second)
	if got := b.State(); got != StateHalfOpen {
		t.Fatalf("state after OpenFor = %s, want half-open", got)
	}
	if !b.Allow() {
		t.Fatal("half-open breaker rejected the probe")
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	b.Record(time.Millisecond, nil)
	if got := b.State(); got != StateClosed {
		t.Fatalf("state after successful probe = %s, want closed", got)
	}
	if !b.Allow() {
		t.Fatal("closed breaker rejected a call")
	}
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	b, clk := newFakeBreaker(BreakerConfig{FailureThreshold: 1, OpenFor: time.Second})
	boom := errors.New("boom")
	b.Allow()
	b.Record(0, boom) // trips
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("half-open breaker rejected the probe")
	}
	b.Record(0, boom) // probe fails: reopen for another full interval
	if b.Allow() {
		t.Fatal("breaker allowed a call right after a failed probe")
	}
	clk.advance(time.Second / 2)
	if b.Allow() {
		t.Fatal("breaker allowed a call halfway through the reopened interval")
	}
	clk.advance(time.Second / 2)
	if !b.Allow() {
		t.Fatal("breaker never recovered to half-open after the failed probe")
	}
}

func TestBreakerSlowCallCounts(t *testing.T) {
	b, _ := newFakeBreaker(BreakerConfig{FailureThreshold: 2, OpenFor: time.Second, SlowCall: 10 * time.Millisecond})
	b.Allow()
	b.Record(20*time.Millisecond, nil) // slow success = failure for tripping
	b.Allow()
	b.Record(30*time.Millisecond, nil)
	if got := b.State(); got != StateOpen {
		t.Fatalf("state after two slow successes = %s, want open", got)
	}
	succ, fails, opens := b.Stats()
	if succ != 0 || fails != 2 || opens != 1 {
		t.Fatalf("Stats = (%d, %d, %d), want (0, 2, 1)", succ, fails, opens)
	}
}

func TestBreakerAbandonedProbeSuperseded(t *testing.T) {
	b, clk := newFakeBreaker(BreakerConfig{FailureThreshold: 1, OpenFor: time.Second})
	b.Allow()
	b.Record(0, errors.New("boom"))
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("half-open breaker rejected the first probe")
	}
	// The probe never reports back (stalled call). After another OpenFor the
	// breaker presumes it lost and admits a replacement.
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("breaker never superseded an abandoned probe")
	}
}

func TestHedgeTrackerColdAndWarm(t *testing.T) {
	h := NewHedgeTracker(0)
	if got := h.Delay(); got != DefaultHedgeDelay {
		t.Fatalf("cold delay = %s, want default %s", got, DefaultHedgeDelay)
	}
	// Warm the window with 1ms latencies: delay converges to 2×p99 = 2ms.
	for i := 0; i < hedgeWindow; i++ {
		h.Observe(time.Millisecond)
	}
	if got := h.Delay(); got != 2*time.Millisecond {
		t.Fatalf("warm delay = %s, want 2ms (2×p99 of a 1ms window)", got)
	}
	// A far-outlier tail drags p99 up but the clamp bounds the delay.
	for i := 0; i < hedgeWindow; i++ {
		h.Observe(10 * time.Second)
	}
	if got := h.Delay(); got != MaxHedgeDelay {
		t.Fatalf("outlier delay = %s, want clamp %s", got, MaxHedgeDelay)
	}
}

func TestUnavailableWrapsMembers(t *testing.T) {
	inner := errors.New("disk exploded")
	err := Unavailable("shard 2: all 2 replicas failed",
		fmt.Errorf("replica 0: %w", inner),
		errors.New("replica 1: down"))
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Unavailable error does not match ErrUnavailable: %v", err)
	}
	if !errors.Is(err, inner) {
		t.Fatalf("Unavailable error lost a member chain: %v", err)
	}
}
