// Package resilience provides the building blocks the sharded store's
// replicated read path is assembled from: a deadline/backoff retry policy, a
// per-replica circuit breaker driven by error and latency accounting, and a
// hedged-request delay tracker that converts an observed latency window into
// the p99-based delay after which a second (follower) probe is worth firing.
//
// The package is deliberately mechanism-only — it knows nothing about shards,
// stores or replicas. internal/shard composes these pieces into replica sets:
// the breaker decides whether a replica is worth trying at all, the policy
// bounds how long a single attempt may stall before the next replica is
// tried, and the hedge tracker decides when tail latency alone justifies a
// redundant probe.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// ErrUnavailable is the sentinel wrapped by every "all replicas exhausted"
// failure. Callers that can degrade (the multi-run executor's Partial mode)
// match it with errors.Is to distinguish an unavailable shard — answerable
// minus its runs — from a semantic failure that must surface.
var ErrUnavailable = errors.New("resilience: unavailable")

// Policy bounds one resilient operation: how long a single attempt may take,
// how long the whole operation may take when the caller's context carries no
// deadline of its own, and how retries back off.
type Policy struct {
	// AttemptTimeout bounds one attempt (one replica call). An attempt that
	// neither succeeds nor fails within it is treated as stalled: the caller
	// moves on to the next replica while the attempt finishes (and is
	// accounted) in the background. 0 means DefaultAttemptTimeout.
	AttemptTimeout time.Duration
	// OpTimeout bounds the whole operation when ctx has no deadline.
	// 0 means DefaultOpTimeout.
	OpTimeout time.Duration
	// Retries is the number of extra attempts Do makes after the first
	// failure. 0 means no retries.
	Retries int
	// Backoff is the pause before the first retry, doubling each retry.
	// 0 means DefaultBackoff (when Retries > 0).
	Backoff time.Duration
}

// Defaults for the zero Policy.
const (
	DefaultAttemptTimeout = 1 * time.Second
	DefaultOpTimeout      = 15 * time.Second
	DefaultBackoff        = 5 * time.Millisecond
)

func (p Policy) normalize() Policy {
	if p.AttemptTimeout <= 0 {
		p.AttemptTimeout = DefaultAttemptTimeout
	}
	if p.OpTimeout <= 0 {
		p.OpTimeout = DefaultOpTimeout
	}
	if p.Backoff <= 0 {
		p.Backoff = DefaultBackoff
	}
	return p
}

// Normalized returns the policy with defaults filled in.
func (p Policy) Normalized() Policy { return p.normalize() }

// Do runs op, retrying transient failures with exponential backoff until the
// retry budget or the context is exhausted. It is the write path's retry
// helper (follower catch-up copies, dual writes); the read path composes the
// policy's timeouts itself because its "retry" is trying a different replica.
func (p Policy) Do(ctx context.Context, op func() error) error {
	p = p.normalize()
	if ctx == nil {
		ctx = context.Background()
	}
	backoff := p.Backoff
	var err error
	for attempt := 0; ; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			if err != nil {
				return err
			}
			return cerr
		}
		if err = op(); err == nil {
			return nil
		}
		if attempt >= p.Retries {
			return err
		}
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return err
		}
		backoff *= 2
	}
}

// Breaker states.
const (
	StateClosed   = "closed"
	StateOpen     = "open"
	StateHalfOpen = "half-open"
)

// BreakerConfig tunes a circuit breaker.
type BreakerConfig struct {
	// FailureThreshold is the number of consecutive failures that trips the
	// breaker open. 0 means DefaultFailureThreshold.
	FailureThreshold int
	// OpenFor is how long a tripped breaker rejects calls before letting a
	// single half-open probe through. 0 means DefaultOpenFor.
	OpenFor time.Duration
	// SlowCall, when > 0, counts a success slower than this as a failure for
	// tripping purposes — the latency half of the error/latency accounting: a
	// replica that answers correctly but pathologically slowly is as useless
	// to the tail as a dead one.
	SlowCall time.Duration
}

// Defaults for the zero BreakerConfig.
const (
	DefaultFailureThreshold = 3
	DefaultOpenFor          = 500 * time.Millisecond
)

// Breaker is a per-replica circuit breaker: closed (calls flow), open (calls
// rejected without being tried), half-open (one probe in flight decides). It
// is driven entirely by Allow/Record — it never spawns goroutines — and is
// safe for concurrent use. Late Records from abandoned (stalled) calls are
// accepted: a stalled replica that finally errors keeps its breaker open, one
// that finally succeeds closes it.
type Breaker struct {
	cfg BreakerConfig
	now func() time.Time // injectable for tests

	mu          sync.Mutex
	consecutive int
	openUntil   time.Time // zero: closed
	probeAt     time.Time // non-zero: a half-open probe is in flight
	successes   int64
	failures    int64
	opens       int64
}

// NewBreaker returns a closed breaker with defaults filled in.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.FailureThreshold <= 0 {
		cfg.FailureThreshold = DefaultFailureThreshold
	}
	if cfg.OpenFor <= 0 {
		cfg.OpenFor = DefaultOpenFor
	}
	return &Breaker{cfg: cfg, now: time.Now}
}

// SetClock replaces the breaker's clock (tests only).
func (b *Breaker) SetClock(now func() time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.now = now
}

// Allow reports whether a call may proceed. In the open state it returns
// false until OpenFor has elapsed, then admits exactly one half-open probe
// (a probe abandoned for another OpenFor is presumed lost and superseded).
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	if b.openUntil.IsZero() {
		return true
	}
	if now.Before(b.openUntil) {
		return false
	}
	// Open interval elapsed: half-open. One probe at a time.
	if !b.probeAt.IsZero() && now.Sub(b.probeAt) < b.cfg.OpenFor {
		return false
	}
	b.probeAt = now
	return true
}

// Record accounts one completed call. err != nil, or a success slower than
// SlowCall, counts as a failure.
func (b *Breaker) Record(d time.Duration, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	failure := err != nil || (b.cfg.SlowCall > 0 && d >= b.cfg.SlowCall)
	if failure {
		b.failures++
		b.consecutive++
		halfOpen := !b.openUntil.IsZero() && !b.probeAt.IsZero()
		if b.consecutive >= b.cfg.FailureThreshold || halfOpen {
			if b.openUntil.IsZero() {
				b.opens++
			}
			b.openUntil = b.now().Add(b.cfg.OpenFor)
			b.probeAt = time.Time{}
			b.consecutive = 0
		}
		return
	}
	b.successes++
	b.consecutive = 0
	b.openUntil = time.Time{}
	b.probeAt = time.Time{}
}

// State returns the breaker's current state string.
func (b *Breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.openUntil.IsZero() {
		return StateClosed
	}
	if b.now().Before(b.openUntil) {
		return StateOpen
	}
	return StateHalfOpen
}

// Stats returns the lifetime success, failure and trip counts.
func (b *Breaker) Stats() (successes, failures, opens int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.successes, b.failures, b.opens
}

// Hedge tracker parameters.
const (
	hedgeWindow = 128 // sliding window of primary latencies
	hedgeWarm   = 32  // observations before the window overrides the default
	hedgeEvery  = 16  // recompute the cached delay every N observations

	DefaultHedgeDelay = 2 * time.Millisecond
	MinHedgeDelay     = 200 * time.Microsecond
	MaxHedgeDelay     = 100 * time.Millisecond
)

// HedgeTracker converts a sliding window of observed primary-read latencies
// into the delay after which a hedged follower probe should fire: twice the
// window's p99, clamped. Until the window warms up it returns the default —
// hedging too eagerly on a cold window would double load for nothing.
type HedgeTracker struct {
	def, min, max time.Duration

	mu     sync.Mutex
	window [hedgeWindow]time.Duration
	n      int // filled slots
	i      int // next slot
	count  int // observations since last recompute
	cached time.Duration
}

// NewHedgeTracker returns a tracker with the given default delay (0 selects
// DefaultHedgeDelay; clamping bounds are the package constants).
func NewHedgeTracker(def time.Duration) *HedgeTracker {
	if def <= 0 {
		def = DefaultHedgeDelay
	}
	return &HedgeTracker{def: def, min: MinHedgeDelay, max: MaxHedgeDelay, cached: def}
}

// Observe records one successful primary latency.
func (h *HedgeTracker) Observe(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.window[h.i] = d
	h.i = (h.i + 1) % hedgeWindow
	if h.n < hedgeWindow {
		h.n++
	}
	h.count++
	if h.n >= hedgeWarm && h.count >= hedgeEvery {
		h.count = 0
		h.cached = h.recompute()
	}
}

// recompute returns 2×p99 of the filled window, clamped. Called under mu.
func (h *HedgeTracker) recompute() time.Duration {
	lats := make([]time.Duration, h.n)
	copy(lats, h.window[:h.n])
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	k := int(0.99*float64(h.n)+0.5) - 1
	if k < 0 {
		k = 0
	}
	if k >= h.n {
		k = h.n - 1
	}
	d := 2 * lats[k]
	if d < h.min {
		d = h.min
	}
	if d > h.max {
		d = h.max
	}
	return d
}

// Delay returns the current hedge delay.
func (h *HedgeTracker) Delay() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n < hedgeWarm {
		return h.def
	}
	return h.cached
}

// Unavailable wraps the attempt errors of an exhausted replica set into one
// error that matches ErrUnavailable and preserves every member's chain (so
// errors.Is still finds e.g. a store's corruption sentinel inside).
func Unavailable(what string, attempts ...error) error {
	members := append([]error{ErrUnavailable}, attempts...)
	return fmt.Errorf("%s: %w", what, errors.Join(members...))
}
