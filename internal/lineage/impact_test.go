package lineage

import (
	"testing"

	"repro/internal/trace"
	"repro/internal/value"
	"repro/internal/workflow"
)

func TestImpactFig3(t *testing.T) {
	s, _, _, _ := setup(t, fig3(), "r1", fig3Inputs())
	im := NewImpact(s)

	// Which P outputs depend on v's element 1? All of P:Y[1,*].
	res, err := im.Affected("r1", "Q", "X", value.Ix(1), NewFocus("P"))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"<P:Y[1,0]>@r1", "<P:Y[1,1]>@r1"}
	if keys := res.Keys(); !equalStrings(keys, want) {
		t.Errorf("impact = %v, want %v", keys, want)
	}

	// The whole-list input c affects every product element.
	res, err = im.Affected("r1", "P", "X2", value.EmptyIndex, NewFocus("P"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 6 {
		t.Errorf("whole-list impact = %d entries, want 6", res.Len())
	}

	// Workflow outputs are collectable by focusing the pseudo-processor.
	// R:X feeds every P activation, so all six product elements of the
	// workflow output are affected — at fine granularity.
	res, err = im.Affected("r1", "R", "X", value.EmptyIndex, NewFocus(trace.WorkflowProc))
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 6 {
		t.Fatalf("workflow-output impact = %v", res)
	}
	for _, e := range res.Entries() {
		if e.Proc != trace.WorkflowProc || e.Port != "y" || len(e.Index) != 2 {
			t.Errorf("impact entry = %+v", e)
		}
	}
}

func TestImpactDualOfLineage(t *testing.T) {
	// Duality: b' ∈ affected(b) at P iff b ∈ lin(b') with the matching
	// focus, for fine-grained bindings.
	s, _, ni, _ := setup(t, fig3(), "r1", fig3Inputs())
	im := NewImpact(s)

	fwd, err := im.Affected("r1", "Q", "X", value.Ix(2), NewFocus("P"))
	if err != nil {
		t.Fatal(err)
	}
	if fwd.Len() == 0 {
		t.Fatal("empty forward closure")
	}
	for _, out := range fwd.Entries() {
		back, err := ni.Lineage("r1", out.Proc, out.Port, out.Index, NewFocus("Q"))
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, e := range back.Entries() {
			if e.Proc == "Q" && e.Port == "X" && e.Index.Equal(value.Ix(2)) {
				found = true
			}
		}
		if !found {
			t.Errorf("lineage of %s does not contain Q:X[2]; duality violated", out)
		}
	}
}

func TestImpactEmptyFocus(t *testing.T) {
	s, _, _, _ := setup(t, fig3(), "r1", fig3Inputs())
	res, err := NewImpact(s).Affected("r1", "Q", "X", value.Ix(0), NewFocus())
	if err != nil || res.Len() != 0 {
		t.Errorf("empty focus impact = %v, %v", res, err)
	}
}

// impactCompositeWF builds pre -> comp(mk -> up) with iteration over comp.
func impactCompositeWF() *workflow.Workflow {
	sub := workflow.New("inner")
	sub.AddInput("a", 0)
	sub.AddOutput("b", 1)
	sub.AddProcessor("mk", "tolist", []workflow.Port{workflow.In("x", 0)}, []workflow.Port{workflow.Out("y", 1)})
	sub.AddProcessor("up", "upper", []workflow.Port{workflow.In("s", 0)}, []workflow.Port{workflow.Out("r", 0)})
	sub.Connect("", "a", "mk", "x")
	sub.Connect("mk", "y", "up", "s")
	sub.Connect("up", "r", "", "b")
	w := workflow.New("outer")
	w.AddInput("in", 1)
	w.AddOutput("out", 2)
	w.AddComposite("comp", sub)
	w.AddProcessor("pre", "upper", []workflow.Port{workflow.In("x", 0)}, []workflow.Port{workflow.Out("y", 0)})
	w.Connect("", "in", "pre", "x")
	w.Connect("pre", "y", "comp", "a")
	w.Connect("comp", "b", "", "out")
	return w
}

func TestImpactThroughComposite(t *testing.T) {
	s, _, _, _ := setup(t, impactCompositeWF(), "r1", map[string]value.Value{"in": value.Strs("a", "b")})
	im := NewImpact(s)
	// The element in[1] flows through the composite; the final outputs that
	// depend on it sit under out[1,*].
	res, err := im.Affected("r1", "pre", "x", value.Ix(1), NewFocus(trace.WorkflowProc))
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() == 0 {
		t.Fatal("no workflow outputs affected")
	}
	for _, e := range res.Entries() {
		if len(e.Index) > 0 && e.Index[0] != 1 {
			t.Errorf("unrelated output affected: %s", e)
		}
	}
}
