package lineage

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/value"
)

// Differential property test of the columnar probe stage: on randomized
// workflows and multi-run traces, the parallel executor with -colscan=on must
// return results identical to NI, sequential INDEXPROJ, and the parallel
// row-probe path (-colscan=off) — byte for byte, whatever mix of segment hits
// and row fallbacks answers the query. The store is checkpointed after the
// initial runs so segments exist, then one more run is ingested without a
// checkpoint so every query exercises the segment path and the row fallback
// inside the same chunk. Scales with DIFF_TRIALS; run under -race it also
// exercises the segment cache's locking against the executor's workers.
func TestColScanDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("long randomized differential test")
	}
	trials := diffTrials(15)
	rng := rand.New(rand.NewSource(20260807))
	reg := propertyRegistry()

	s0 := obs.Default.Snapshot()
	for trial := 0; trial < trials; trial++ {
		w := buildRandomWorkflow(rng, fmt.Sprintf("cw%d", trial), 3+rng.Intn(6), true)
		if err := w.Validate(); err != nil {
			t.Fatalf("trial %d: invalid workflow: %v", trial, err)
		}
		s, err := store.OpenMemory()
		if err != nil {
			t.Fatal(err)
		}
		// Identical inputs across runs, for the same reason as the executor
		// differential test: NI answers extensionally per run, so strict
		// equality needs every run to contain the queried index.
		inputs := map[string]value.Value{}
		for _, in := range w.Inputs {
			inputs[in.Name] = randomInput(rng, in.DeclaredDepth, in.Name, false)
		}
		nRuns := 3 + rng.Intn(3)
		var runIDs []string
		storeRun := func(runID string) {
			t.Helper()
			_, tr, err := engine.New(reg).RunTrace(w, runID, inputs)
			if err != nil {
				t.Fatalf("trial %d: engine: %v", trial, err)
			}
			if err := s.StoreTrace(tr); err != nil {
				t.Fatal(err)
			}
			runIDs = append(runIDs, runID)
		}
		for r := 0; r < nRuns; r++ {
			storeRun(fmt.Sprintf("run%d", r))
		}
		// Checkpoint builds a column segment for every stored run; the run
		// ingested after it has none and must be answered by the row
		// fallback inside the colscan chunks.
		if err := s.Checkpoint(); err != nil {
			t.Fatalf("trial %d: checkpoint: %v", trial, err)
		}
		storeRun("late")

		ni := NewNaive(s)
		ip, err := NewIndexProj(s, w)
		if err != nil {
			t.Fatal(err)
		}
		tr0, err := s.LoadTrace(runIDs[0])
		if err != nil {
			t.Fatal(err)
		}
		type q struct {
			proc, port string
			idx        value.Index
		}
		var queries []q
		procSet := map[string]bool{}
		for _, ev := range tr0.Xforms {
			procSet[ev.Proc] = true
			for _, out := range ev.Outputs {
				queries = append(queries, q{out.Proc, out.Port, out.Index})
			}
		}
		if len(queries) == 0 {
			s.Close()
			continue
		}
		var procs []string
		for p := range procSet {
			procs = append(procs, p)
		}

		for probe := 0; probe < 4; probe++ {
			query := queries[rng.Intn(len(queries))]
			focus := NewFocus()
			for _, p := range procs {
				if rng.Intn(3) == 0 {
					focus[p] = true
				}
			}
			a, err := ni.LineageMultiRun(runIDs, query.proc, query.port, query.idx, focus)
			if err != nil {
				t.Fatalf("trial %d: NI multi-run: %v", trial, err)
			}
			b, err := ip.LineageMultiRun(runIDs, query.proc, query.port, query.idx, focus)
			if err != nil {
				t.Fatalf("trial %d: INDEXPROJ multi-run: %v", trial, err)
			}
			opt := MultiRunOptions{
				Parallelism: 1 + rng.Intn(4),
				BatchSize:   rng.Intn(3), // 0 = default, 1 = per-run, 2 = pairs
			}
			optOff, optOn := opt, opt
			optOff.ColScan = ColScanOff
			optOn.ColScan = ColScanOn
			c, err := ip.LineageMultiRunParallel(context.Background(), runIDs, query.proc, query.port, query.idx, focus, optOff)
			if err != nil {
				t.Fatalf("trial %d: parallel colscan=off: %v", trial, err)
			}
			d, err := ip.LineageMultiRunParallel(context.Background(), runIDs, query.proc, query.port, query.idx, focus, optOn)
			if err != nil {
				t.Fatalf("trial %d: parallel colscan=on: %v", trial, err)
			}
			for name, got := range map[string]*Result{"INDEXPROJ": b, "parallel colscan=off": c, "parallel colscan=on": d} {
				if !a.Equal(got) {
					t.Fatalf("trial %d: NI %v != %s %v\nquery %s:%s%v focus %v\nworkflow: %s",
						trial, a, name, got, query.proc, query.port, query.idx, focus.Names(), mustJSON(w))
				}
			}
		}
		s.Close()
	}

	// The sweep must actually have exercised both halves of the colscan
	// chunk: segments scanned for the checkpointed runs, row fallbacks for
	// the post-checkpoint run.
	delta := obs.Default.Snapshot().Sub(s0)
	if got := delta.Counter("colscan.segments_scanned"); got == 0 {
		t.Error("differential sweep never scanned a column segment")
	}
	if got := delta.Counter("colscan.fallbacks"); got == 0 {
		t.Error("differential sweep never took the row fallback for the post-checkpoint run")
	}
	if got := delta.Counter("lineage.multirun.colscan_chunks"); got == 0 {
		t.Error("differential sweep never entered the vectorized probe stage")
	}
}
