package lineage

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"strconv"
	"sync"

	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/store"
	"repro/internal/value"
)

// This file implements the parallel multi-run executor: the probe phase (t2
// of Fig. 4) of a multi-run query executed concurrently and batched. Runs
// are independent by construction (§3.4 — one plan, probed once per run),
// and so are the plan's probes (each is one indexed trace lookup), so the
// executor decomposes the work into (probe × run-chunk) tasks: each task
// answers one probe for a whole chunk of runs with the store's batched
// multi-run API (one index-range scan instead of one round-trip per run)
// and materializes the staged values with one batched fetch. A worker pool
// drains the tasks into private partial Results, merged once at the end —
// no lock is contended during execution, and the total store work is
// independent of the parallelism level.

// DefaultBatchSize caps the number of runs a single batched store probe
// answers (bounding the bindings one task stages in memory) when
// MultiRunOptions.BatchSize is unset. Larger batches mean fewer scans, so
// the default chunk is as large as the cap allows.
const DefaultBatchSize = 64

// MultiRunOptions tunes the parallel multi-run executor.
type MultiRunOptions struct {
	// Parallelism is the number of worker goroutines probing runs
	// concurrently. Values <= 1 select the sequential in-line path.
	Parallelism int
	// BatchSize is the number of runs answered per batched store probe
	// (one index-range scan per probe per batch). 0 means DefaultBatchSize;
	// 1 disables batching and probes run-by-run, exactly like the
	// sequential single-run executor.
	BatchSize int
	// ColScan selects the vectorized columnar probe stage (see colscan.go).
	// The zero value is ColScanAuto: use column segments when the store has
	// them and the query is large enough to profit.
	ColScan ColScanMode
	// Partial enables degraded-mode answers over a replicated sharded store:
	// when every replica of some shard is unavailable (the failure matches
	// resilience.ErrUnavailable), the query returns the surviving shards'
	// entries with the unanswerable runs marked degraded on the Result,
	// instead of failing whole. Semantic failures (unknown runs, corruption
	// detected on a healthy replica) still fail the query. Off by default:
	// a non-partial query over an unavailable shard fails with the joined,
	// shard-attributed error.
	Partial bool
}

func (o MultiRunOptions) normalize() MultiRunOptions {
	if o.Parallelism < 1 {
		o.Parallelism = 1
	}
	if o.BatchSize == 0 {
		o.BatchSize = DefaultBatchSize
	}
	if o.BatchSize < 1 {
		o.BatchSize = 1
	}
	return o
}

// LineageMultiRunParallel evaluates the query over a set of runs with the
// configured parallelism and probe batching. The specification graph is
// traversed once (one Compile, §3.4); only the probes execute per run. The
// result is identical to LineageMultiRun's for every parallelism and batch
// size — a property enforced by randomized tests.
func (ip *IndexProj) LineageMultiRunParallel(ctx context.Context, runIDs []string, proc, port string, idx value.Index, focus Focus, opt MultiRunOptions) (*Result, error) {
	plan, err := ip.Compile(proc, port, idx, focus)
	if err != nil {
		return nil, err
	}
	return ip.ExecuteMultiRun(ctx, plan, runIDs, opt)
}

// probeChunk is one executor task: one plan probe answered for one chunk of
// runs.
type probeChunk struct {
	probe Probe
	runs  []string
}

// ExecuteMultiRun runs a compiled plan against a set of runs under the given
// options. The first failing task cancels the rest; cancelling ctx aborts
// the query with the context's error. A panic inside a pooled task is
// confined to its worker and surfaced as an error carrying the stack.
func (ip *IndexProj) ExecuteMultiRun(ctx context.Context, plan *CompiledPlan, runIDs []string, opt MultiRunOptions) (*Result, error) {
	total := obs.Start(mrQueryNs)
	res, err := ip.executeMultiRun(ctx, plan, runIDs, opt)
	d := total.End()
	if err == nil {
		ipQueries.Add(1)
		if obs.SlowExceeded(d) {
			obs.Slow("lineage.multirun", d,
				"runs", strconv.Itoa(len(runIDs)),
				"probes", strconv.Itoa(len(plan.Probes)),
				"parallelism", strconv.Itoa(opt.normalize().Parallelism),
				"bindings", strconv.Itoa(res.Len()))
		}
	}
	return res, err
}

func (ip *IndexProj) executeMultiRun(ctx context.Context, plan *CompiledPlan, runIDs []string, opt MultiRunOptions) (*Result, error) {
	if ip.q == nil {
		return nil, fmt.Errorf("lineage: no store attached to this evaluator")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	opt = opt.normalize()
	// Duplicate run IDs would stage every matching binding once per
	// occurrence (the chunk loop iterates byRun[runID] per occurrence) and
	// waste probes; unknown runs would silently contribute nothing. Dedup
	// first, then reject unknown runs with the store's sentinel. In partial
	// mode, runs whose existence cannot even be checked (their shard is
	// unavailable) are set aside as degraded instead of failing the query.
	runIDs = dedupRuns(runIDs)
	live, degraded, err := validateRuns(ip.q.HasRun, runIDs, opt.Partial)
	if err != nil {
		return nil, err
	}
	// The columnar decision is made once per query, not per task: every
	// chunk of the same query uses the same probe stage, so the answer is
	// assembled from one consistent path plus the per-run row fallback.
	cs := ip.colScanner(len(live), opt)
	chunks := partitionChunks(ip.q, live, opt.BatchSize)
	tasks := make([]probeChunk, 0, len(plan.Probes)*len(chunks))
	for _, chunk := range chunks {
		for _, pr := range plan.Probes {
			tasks = append(tasks, probeChunk{probe: pr, runs: chunk})
		}
	}
	mrTasks.Add(int64(len(tasks)))

	// degradeChunk reports whether a chunk failure is absorbable: partial
	// mode is on and the failure is (only ever) shard unavailability. The
	// chunk's runs are marked degraded and the query proceeds.
	degradeChunk := func(res *Result, runs []string, err error) bool {
		if !opt.Partial || !errors.Is(err, resilience.ErrUnavailable) {
			return false
		}
		res.MarkDegraded(runs...)
		return true
	}
	finish := func(result *Result) *Result {
		result.MarkDegraded(degraded...)
		if n := len(result.DegradedRuns()); n > 0 {
			mrDegraded.Add(int64(n))
		}
		return result
	}

	if opt.Parallelism == 1 || len(tasks) <= 1 {
		result := NewResult()
		for _, t := range tasks {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if err := ip.executeProbeChunk(ctx, result, t.probe, t.runs, cs); err != nil {
				if degradeChunk(result, t.runs, err) {
					continue
				}
				return nil, err
			}
		}
		return finish(result), nil
	}

	workers := opt.Parallelism
	if workers > len(tasks) {
		workers = len(tasks)
	}
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	work := make(chan probeChunk, len(tasks))
	partials := make([]*Result, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs[w] = fmt.Errorf("lineage: probe worker panic: %v\n%s", r, debug.Stack())
					cancel()
				}
			}()
			partial := NewResult()
			partials[w] = partial
			for t := range work {
				if errs[w] != nil {
					continue // drain after a failure
				}
				if err := wctx.Err(); err != nil {
					errs[w] = err
					continue
				}
				if err := ip.executeProbeChunk(wctx, partial, t.probe, t.runs, cs); err != nil {
					if degradeChunk(partial, t.runs, err) {
						continue
					}
					errs[w] = err
					cancel() // first error stops the other workers
				}
			}
		}(w)
	}
	for _, t := range tasks {
		work <- t
	}
	close(work)
	wg.Wait()

	if err := firstError(ctx, errs); err != nil {
		return nil, err
	}
	msp := obs.Start(mrMergeNs)
	result := NewResult()
	for w := 0; w < workers; w++ {
		result.Merge(partials[w])
	}
	msp.End()
	return finish(result), nil
}

// firstError selects the error to surface from a pool run: a real failure
// beats a secondary cancellation error, and if the caller's own context was
// cancelled, its error is authoritative.
func firstError(ctx context.Context, errs []error) error {
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if first == nil {
			first = err
			continue
		}
		if isCancellation(first) && !isCancellation(err) {
			first = err
		}
	}
	if first != nil && isCancellation(first) && ctx.Err() != nil {
		return ctx.Err()
	}
	return first
}

func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// executeProbeChunk answers one probe for one chunk of runs. With a column
// scanner selected (cs non-nil), the chunk goes through the vectorized stage
// (see executeColScanChunk); otherwise run-by-run for singleton chunks
// (exactly the sequential single-run executor's store accesses), batched
// otherwise — one index-range scan stages the bindings of every run, then
// one batched fetch materializes their values. Stores that implement the
// ctx-bounded querier variants (a replicated sharded store) get the caller's
// deadline threaded through, so a stalled replica cannot hold the chunk past
// it.
func (ip *IndexProj) executeProbeChunk(ctx context.Context, result *Result, pr Probe, runIDs []string, cs store.ColumnScanner) error {
	sp := obs.Start(ipProbeNs)
	defer sp.End()
	ipProbes.Add(1)
	if cs != nil {
		return ip.executeColScanChunk(ctx, result, pr, runIDs, cs)
	}
	if len(runIDs) == 1 {
		bs, err := ip.inputBindings(ctx, runIDs[0], pr.Proc, pr.Port, pr.Index)
		if err != nil {
			return err
		}
		for _, b := range bs {
			v, err := ip.value(ctx, b.RunID, b.ValID)
			if err != nil {
				return err
			}
			result.Add(Entry{RunID: b.RunID, Proc: b.Proc, Port: b.Port, Index: b.Index, Ctx: b.Ctx, Value: v})
		}
		return nil
	}

	byRun, err := ip.inputBindingsBatch(ctx, runIDs, pr.Proc, pr.Port, pr.Index)
	if err != nil {
		return err
	}
	var staged []Entry
	var refs []store.ValueRef
	for _, runID := range runIDs {
		for _, b := range byRun[runID] {
			staged = append(staged, Entry{RunID: b.RunID, Proc: b.Proc, Port: b.Port, Index: b.Index, Ctx: b.Ctx})
			refs = append(refs, store.ValueRef{RunID: b.RunID, ValID: b.ValID})
		}
	}
	if len(staged) == 0 {
		return nil
	}
	vals, err := ip.valuesBatch(ctx, refs)
	if err != nil {
		return err
	}
	for i := range staged {
		v, ok := vals[refs[i]]
		if !ok {
			return fmt.Errorf("lineage: missing value %d in run %q", refs[i].ValID, refs[i].RunID)
		}
		staged[i].Value = v
		result.Add(staged[i])
	}
	return nil
}

// The ctx-threading querier helpers: each prefers the store's ctx-bounded
// variant (store.ContextLineageQuerier) and falls back to the plain method.

func (ip *IndexProj) inputBindings(ctx context.Context, runID, proc, port string, idx value.Index) ([]store.Binding, error) {
	if cq, ok := ip.q.(store.ContextLineageQuerier); ok {
		return cq.InputBindingsCtx(ctx, runID, proc, port, idx)
	}
	return ip.q.InputBindings(runID, proc, port, idx)
}

func (ip *IndexProj) inputBindingsBatch(ctx context.Context, runIDs []string, proc, port string, idx value.Index) (map[string][]store.Binding, error) {
	if cq, ok := ip.q.(store.ContextLineageQuerier); ok {
		return cq.InputBindingsBatchCtx(ctx, runIDs, proc, port, idx)
	}
	return ip.q.InputBindingsBatch(runIDs, proc, port, idx)
}

func (ip *IndexProj) value(ctx context.Context, runID string, valID int64) (value.Value, error) {
	if cq, ok := ip.q.(store.ContextLineageQuerier); ok {
		return cq.ValueCtx(ctx, runID, valID)
	}
	return ip.q.Value(runID, valID)
}

func (ip *IndexProj) valuesBatch(ctx context.Context, refs []store.ValueRef) (map[store.ValueRef]value.Value, error) {
	if cq, ok := ip.q.(store.ContextLineageQuerier); ok {
		return cq.ValuesBatchCtx(ctx, refs)
	}
	return ip.q.ValuesBatch(refs)
}

// dedupRuns returns runIDs with duplicates removed, preserving first-seen
// order. The common duplicate-free case returns the input slice unchanged
// (no allocation).
func dedupRuns(runIDs []string) []string {
	seen := make(map[string]bool, len(runIDs))
	for i, r := range runIDs {
		if seen[r] {
			// First duplicate found: copy the unique prefix and filter the rest.
			out := make([]string, i, len(runIDs))
			copy(out, runIDs[:i])
			for _, r := range runIDs[i:] {
				if !seen[r] {
					seen[r] = true
					out = append(out, r)
				}
			}
			return out
		}
		seen[r] = true
	}
	return runIDs
}

// validateRuns rejects unknown runs up front so a multi-run query over a
// nonexistent run surfaces store.ErrUnknownRun instead of silently returning
// an empty result. Existence checks are point lookups on the runs table and
// are not counted as probes. In partial mode, a run whose existence cannot be
// checked because its shard is unavailable is returned in degraded rather
// than failing the query; any other check failure — including an unknown
// run, which is a semantic answer from a healthy shard — still fails it.
func validateRuns(hasRun func(string) (bool, error), runIDs []string, partial bool) (live, degraded []string, err error) {
	live = runIDs
	for i, r := range runIDs {
		ok, err := hasRun(r)
		if err != nil {
			if partial && errors.Is(err, resilience.ErrUnavailable) {
				if len(degraded) == 0 {
					// First degraded run: switch to a filtered copy.
					live = append([]string(nil), runIDs[:i]...)
				}
				degraded = append(degraded, r)
				continue
			}
			return nil, nil, err
		}
		if !ok {
			return nil, nil, fmt.Errorf("lineage: %w: %q", store.ErrUnknownRun, r)
		}
		if len(degraded) > 0 {
			live = append(live, r)
		}
	}
	return live, degraded, nil
}

// partitionChunks forms the executor's run chunks. When the querier
// physically partitions its runs (store.RunPartitioner — e.g. a sharded
// store), chunks are formed within one partition at a time, so every
// batched probe lands on a single partition and scans only that
// partition's (smaller) index instead of the whole store's; the answer is
// identical either way, because runs are independent (§3.4) and chunking
// only groups round-trips.
func partitionChunks(q store.LineageQuerier, runIDs []string, size int) [][]string {
	rp, ok := q.(store.RunPartitioner)
	if !ok {
		return chunkRuns(runIDs, size)
	}
	var chunks [][]string
	for _, part := range rp.PartitionRuns(runIDs) {
		chunks = append(chunks, chunkRuns(part, size)...)
	}
	return chunks
}

// chunkRuns partitions runIDs into consecutive chunks of at most size runs.
// size is clamped to 1 so a miscalling future caller gets tiny chunks, not
// an infinite loop.
func chunkRuns(runIDs []string, size int) [][]string {
	if len(runIDs) == 0 {
		return nil
	}
	if size < 1 {
		size = 1
	}
	chunks := make([][]string, 0, (len(runIDs)+size-1)/size)
	for start := 0; start < len(runIDs); start += size {
		end := start + size
		if end > len(runIDs) {
			end = len(runIDs)
		}
		chunks = append(chunks, runIDs[start:end])
	}
	return chunks
}
