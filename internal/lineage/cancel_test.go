package lineage

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/store"
	"repro/internal/value"
	"repro/internal/workflow"
)

// This file pins the cancellation semantics of the parallel multi-run
// executor: a cancelled context yields context.Canceled (an expired
// deadline context.DeadlineExceeded), worker goroutines are reaped, a
// panicking probe is confined to its worker and surfaced as an error, and
// the evaluator stays usable afterwards. Run under -race these tests also
// exercise the cancel/drain paths for data races.

// cancelEnv stores several deterministic testbed runs and returns the
// pieces needed to build evaluators over them.
func cancelEnv(t *testing.T, nRuns int) (*store.Store, *workflow.Workflow, []string) {
	t.Helper()
	wf := gen.Testbed(8)
	reg := engine.NewRegistry()
	gen.RegisterTestbed(reg)
	eng := engine.New(reg)
	s, err := store.OpenMemory()
	if err != nil {
		t.Fatal(err)
	}
	runs := make([]string, 0, nRuns)
	for r := 0; r < nRuns; r++ {
		runID := fmt.Sprintf("c%03d", r)
		_, tr, err := eng.RunTrace(wf, runID, gen.TestbedInputs(6))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.StoreTrace(tr); err != nil {
			t.Fatal(err)
		}
		runs = append(runs, runID)
	}
	return s, wf, runs
}

func lineageWaitNoLeaks(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutine leak: %d goroutines, baseline %d\n%s", n, baseline, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// hookQuerier delegates to a real store but runs a hook before every
// batched probe — the deterministic way to cancel a context (or panic)
// while the executor is mid-flight.
type hookQuerier struct {
	store.LineageQuerier
	hook func()
	once sync.Once
}

func (h *hookQuerier) InputBindingsBatch(runIDs []string, proc, port string, idx value.Index) (map[string][]store.Binding, error) {
	h.once.Do(h.hook)
	return h.LineageQuerier.InputBindingsBatch(runIDs, proc, port, idx)
}

func (h *hookQuerier) InputBindings(runID, proc, port string, idx value.Index) ([]store.Binding, error) {
	h.once.Do(h.hook)
	return h.LineageQuerier.InputBindings(runID, proc, port, idx)
}

// TestExecuteMultiRunPreCancelled: an already-cancelled context is refused
// before any probe runs, on both the sequential and the parallel path.
func TestExecuteMultiRunPreCancelled(t *testing.T) {
	s, wf, runs := cancelEnv(t, 4)
	defer s.Close()
	ip, err := NewIndexProj(s, wf)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := ip.Compile(gen.FinalName, "product", value.Ix(2, 2), NewFocus(gen.ListGenName))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, par := range []int{1, 4} {
		_, err := ip.ExecuteMultiRun(ctx, plan, runs, MultiRunOptions{Parallelism: par})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("P=%d: ExecuteMultiRun under cancelled ctx = %v, want context.Canceled", par, err)
		}
	}
}

// TestExecuteMultiRunCancelMidFlight cancels the context from inside the
// first store probe while workers hold queued chunks: the executor must
// return context.Canceled, reap its workers, and leave the evaluator and
// store usable.
func TestExecuteMultiRunCancelMidFlight(t *testing.T) {
	s, wf, runs := cancelEnv(t, 6)
	defer s.Close()
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	hq := &hookQuerier{LineageQuerier: s, hook: cancel}
	ip, err := NewIndexProj(hq, wf)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := ip.Compile(gen.FinalName, "product", value.Ix(2, 2), NewFocus(gen.ListGenName))
	if err != nil {
		t.Fatal(err)
	}
	_, err = ip.ExecuteMultiRun(ctx, plan, runs, MultiRunOptions{Parallelism: 2, BatchSize: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ExecuteMultiRun after mid-flight cancel = %v, want context.Canceled", err)
	}
	lineageWaitNoLeaks(t, baseline)

	// The evaluator and store remain usable for fresh queries.
	ip2, err := NewIndexProj(s, wf)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ip2.LineageMultiRun(runs, gen.FinalName, "product", value.Ix(2, 2), NewFocus(gen.ListGenName))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ip2.LineageMultiRunParallel(context.Background(), runs, gen.FinalName, "product",
		value.Ix(2, 2), NewFocus(gen.ListGenName), MultiRunOptions{Parallelism: 2, BatchSize: 1})
	if err != nil {
		t.Fatalf("query after cancellation: %v", err)
	}
	if !got.Equal(want) {
		t.Fatal("post-cancellation parallel result diverged from sequential answer")
	}
}

// TestExecuteMultiRunDeadlineExceeded: an expired deadline is reported as
// context.DeadlineExceeded, not a generic failure.
func TestExecuteMultiRunDeadlineExceeded(t *testing.T) {
	s, wf, runs := cancelEnv(t, 3)
	defer s.Close()
	ip, err := NewIndexProj(s, wf)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := ip.Compile(gen.FinalName, "product", value.Ix(1, 1), NewFocus(gen.ListGenName))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done()
	if _, err := ip.ExecuteMultiRun(ctx, plan, runs, MultiRunOptions{Parallelism: 2}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("ExecuteMultiRun under expired deadline = %v, want context.DeadlineExceeded", err)
	}
}

// TestExecuteMultiRunPanicConfined: a panic inside a store probe is
// confined to its worker, converted into an error carrying the panic, and
// cancels the remaining chunks; no goroutines leak.
func TestExecuteMultiRunPanicConfined(t *testing.T) {
	s, wf, runs := cancelEnv(t, 6)
	defer s.Close()
	baseline := runtime.NumGoroutine()

	hq := &hookQuerier{LineageQuerier: s, hook: func() { panic("boom: injected probe panic") }}
	ip, err := NewIndexProj(hq, wf)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := ip.Compile(gen.FinalName, "product", value.Ix(2, 2), NewFocus(gen.ListGenName))
	if err != nil {
		t.Fatal(err)
	}
	_, err = ip.ExecuteMultiRun(context.Background(), plan, runs, MultiRunOptions{Parallelism: 2, BatchSize: 1})
	if err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("ExecuteMultiRun with panicking probe = %v, want a panic-carrying error", err)
	}
	lineageWaitNoLeaks(t, baseline)
}
