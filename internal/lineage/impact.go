package lineage

import (
	"repro/internal/store"
	"repro/internal/value"
)

// Impact is the forward dual of lineage: starting from a binding, it
// traverses the provenance graph *downwards* and reports the output bindings
// of focus processors that depend on it — "what was affected by this
// input?". The paper only treats the backward direction; forward queries
// reuse the same extensional trace and granularity rules. (The index
// projection rule does not invert cheaply in this direction — an input
// fragment constrains a middle segment of q rather than a prefix — so
// impact queries use the extensional traversal.)
type Impact struct {
	s store.TraceQuerier
}

// NewImpact returns a forward-query evaluator over a provenance store — a
// single *store.Store or any other TraceQuerier.
func NewImpact(s store.TraceQuerier) *Impact { return &Impact{s: s} }

// Affected computes the forward closure of ⟨proc:port[idx]⟩ within one run,
// collecting the output bindings of focus processors encountered on the
// paths. Focusing the pseudo-processor "" collects workflow outputs.
func (im *Impact) Affected(runID, proc, port string, idx value.Index, focus Focus) (*Result, error) {
	result := NewResult()
	start := node{proc: proc, port: port, idx: idx.Clone()}
	visited := map[entryKey]bool{start.key(): true}
	stack := []node{start}

	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]

		push := func(next node) {
			k := next.key()
			if !visited[k] {
				visited[k] = true
				stack = append(stack, next)
			}
		}

		// Activations consuming this binding: their outputs are affected.
		events, err := im.s.XformsByInput(runID, cur.proc, cur.port, cur.idx)
		if err != nil {
			return nil, err
		}
		for _, ev := range events {
			collect := focus[ev.Proc]
			for _, out := range ev.Outputs {
				if collect {
					v, err := im.s.Value(out.RunID, out.ValID)
					if err != nil {
						return nil, err
					}
					result.Add(Entry{RunID: out.RunID, Proc: out.Proc, Port: out.Port, Index: out.Index, Ctx: out.Ctx, Value: v})
				}
				push(node{proc: out.Proc, port: out.Port, idx: out.Index})
			}
		}

		// Transfers carrying this binding downstream.
		xfers, err := im.s.XfersFrom(runID, cur.proc, cur.port)
		if err != nil {
			return nil, err
		}
		for _, xf := range xfers {
			down, ok := translateAcrossXfer(cur.idx, xf.From.Index, xf.To.Index)
			if !ok {
				continue
			}
			if focus[xf.To.Proc] && isSinkPseudo(xf.To.Proc) {
				v, err := im.s.Value(xf.To.RunID, xf.To.ValID)
				if err != nil {
					return nil, err
				}
				result.Add(Entry{RunID: xf.To.RunID, Proc: xf.To.Proc, Port: xf.To.Port, Index: down, Ctx: xf.To.Ctx, Value: v})
			}
			push(node{proc: xf.To.Proc, port: xf.To.Port, idx: down})
		}
	}
	return result, nil
}

// isSinkPseudo reports whether a processor name denotes a workflow (or
// sub-workflow) pseudo-processor, whose ports are only reached by xfer.
func isSinkPseudo(proc string) bool {
	return proc == "" || proc[len(proc)-1] == '/'
}
