package lineage

import (
	"fmt"
	"testing"

	"repro/internal/trace"
	"repro/internal/value"
	"repro/internal/workflow"
)

// viewChain builds in -> a -> b -> c -> d -> out with per-element lineage.
func viewChain() *workflow.Workflow {
	w := workflow.New("viewchain")
	w.AddInput("in", 1)
	w.AddOutput("out", 1)
	prev, prevPort := "", "in"
	for _, name := range []string{"a", "b", "c", "d"} {
		w.AddProcessor(name, "upper", []workflow.Port{workflow.In("x", 0)}, []workflow.Port{workflow.Out("y", 0)})
		w.Connect(prev, prevPort, name, "x")
		prev, prevPort = name, "y"
	}
	w.Connect(prev, prevPort, "", "out")
	return w
}

func TestViewDefinition(t *testing.T) {
	v := NewView("stages")
	if err := v.AddGroup("mid", "b", "c"); err != nil {
		t.Fatal(err)
	}
	if err := v.AddGroup("head", "a"); err != nil {
		t.Fatal(err)
	}
	if err := v.AddGroup("", "d"); err == nil {
		t.Error("empty group name accepted")
	}
	if err := v.AddGroup("mid", "d"); err == nil {
		t.Error("duplicate group accepted")
	}
	if err := v.AddGroup("other", "b"); err == nil {
		t.Error("overlapping groups accepted")
	}
	if err := v.AddGroup("empty"); err == nil {
		t.Error("empty group accepted")
	}
	if got := v.Groups(); len(got) != 2 || got[0] != "head" || got[1] != "mid" {
		t.Errorf("Groups = %v", got)
	}
	if g, ok := v.GroupOf("c"); !ok || g != "mid" {
		t.Errorf("GroupOf(c) = %s, %v", g, ok)
	}
	w := viewChain()
	if err := v.Validate(w); err != nil {
		t.Errorf("valid view rejected: %v", err)
	}
	bad := NewView("bad")
	_ = bad.AddGroup("g", "nosuch")
	if err := bad.Validate(w); err == nil {
		t.Error("view over unknown processor accepted")
	}
}

func TestViewExternalInputs(t *testing.T) {
	w := viewChain()
	v := NewView("stages")
	if err := v.AddGroup("mid", "b", "c"); err != nil {
		t.Fatal(err)
	}
	ext := v.ExternalInputs(w)
	mid := ext["mid"]
	// b:x is fed from a (outside the group) -> external; c:x is fed from b
	// (inside) -> internal.
	if !mid[workflow.PortID{Proc: "b", Port: "x"}] {
		t.Error("b:x not recognized as external input")
	}
	if mid[workflow.PortID{Proc: "c", Port: "x"}] {
		t.Error("c:x wrongly external")
	}
}

func TestViewLineage(t *testing.T) {
	w := viewChain()
	inputs := map[string]value.Value{"in": value.Strs("p", "q", "r")}
	_, _, ni, ip := setup(t, w, "r1", inputs)

	v := NewView("stages")
	if err := v.AddGroup("mid", "b", "c"); err != nil {
		t.Fatal(err)
	}

	// Group-focused query: "which inputs of the mid stage produced out[1]?"
	res, err := v.LineageThroughView(w, func(f Focus) (*Result, error) {
		return ip.Lineage("r1", trace.WorkflowProc, "out", value.Ix(1), f)
	}, "mid")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 1 {
		t.Fatalf("view entries = %v", res)
	}
	e := res.Entries[0]
	if e.Group != "mid" || e.Proc != "b" || e.Port != "x" || !e.Index.Equal(value.Ix(1)) {
		t.Errorf("view entry = %+v", e)
	}
	el, err := e.Element()
	if err != nil {
		t.Fatal(err)
	}
	// b receives a's output: "Q" (uppercased q).
	if s, _ := el.StringVal(); s != "Q" {
		t.Errorf("element = %q", s)
	}
	// The internal c:x binding was hidden by the abstraction: the raw
	// processor-level result would contain both.
	raw, err := ip.Lineage("r1", trace.WorkflowProc, "out", value.Ix(1), NewFocus("b", "c"))
	if err != nil {
		t.Fatal(err)
	}
	if raw.Len() != 2 {
		t.Errorf("raw result = %v", raw)
	}

	// NI through the view agrees.
	res2, err := v.LineageThroughView(w, func(f Focus) (*Result, error) {
		return ni.Lineage("r1", trace.WorkflowProc, "out", value.Ix(1), f)
	}, "mid")
	if err != nil {
		t.Fatal(err)
	}
	if res.String() != res2.String() {
		t.Errorf("view results differ: %s vs %s", res, res2)
	}
	if res.String() == "{}" {
		t.Error("empty rendering")
	}

	// Unknown group.
	if _, err := v.FocusFor("nosuch"); err == nil {
		t.Error("unknown group accepted")
	}
}

func TestViewOverComposite(t *testing.T) {
	// Groups may name processors inside nested dataflows by path.
	sub := workflow.New("inner")
	sub.AddInput("a", 0)
	sub.AddOutput("b", 1)
	sub.AddProcessor("mk", "tolist", []workflow.Port{workflow.In("x", 0)}, []workflow.Port{workflow.Out("y", 1)})
	sub.AddProcessor("up", "upper", []workflow.Port{workflow.In("s", 0)}, []workflow.Port{workflow.Out("r", 0)})
	sub.Connect("", "a", "mk", "x")
	sub.Connect("mk", "y", "up", "s")
	sub.Connect("up", "r", "", "b")
	w := workflow.New("outer")
	w.AddInput("in", 1)
	w.AddOutput("out", 2)
	w.AddComposite("comp", sub)
	w.Connect("", "in", "comp", "a")
	w.Connect("comp", "b", "", "out")

	v := NewView("v")
	if err := v.AddGroup("inside", "comp/up"); err != nil {
		t.Fatal(err)
	}
	if err := v.Validate(w); err != nil {
		t.Fatalf("composite-path view rejected: %v", err)
	}
	ext := v.ExternalInputs(w)
	if !ext["inside"][workflow.PortID{Proc: "comp/up", Port: "s"}] {
		t.Errorf("external inputs = %v", ext)
	}

	inputs := map[string]value.Value{"in": value.Strs("m", "n")}
	_, _, _, ip := setup(t, w, "r1", inputs)
	res, err := v.LineageThroughView(w, func(f Focus) (*Result, error) {
		return ip.Lineage("r1", trace.WorkflowProc, "out", value.Ix(1, 0), f)
	}, "inside")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 1 || res.Entries[0].Proc != "comp/up" {
		t.Fatalf("composite view result = %v", res)
	}
}

func TestViewGK(t *testing.T) {
	// A realistic view: collapse the GK right branch into one "common
	// pathway analysis" stage — its virtual input is the whole gene nest.
	w := workflow.New("gkish")
	w.AddInput("genes", 2)
	w.AddOutput("common", 1)
	w.AddProcessor("flattenx", "flatten", []workflow.Port{workflow.In("lists", 2)}, []workflow.Port{workflow.Out("flat", 1)})
	w.AddProcessor("lookup", "tolist", []workflow.Port{workflow.In("g", 1)}, []workflow.Port{workflow.Out("paths", 1)})
	w.AddProcessor("describe", "upper", []workflow.Port{workflow.In("p", 0)}, []workflow.Port{workflow.Out("d", 0)})
	w.Connect("", "genes", "flattenx", "lists")
	w.Connect("flattenx", "flat", "lookup", "g")
	w.Connect("lookup", "paths", "describe", "p")
	w.Connect("describe", "d", "", "common")

	// "tolist" expects an atom; give it a list port version by reusing
	// flatten-compatible behaviour: adjust with id semantics instead.
	w.Processor("lookup").Type = "id"

	inputs := map[string]value.Value{"genes": value.List(value.Strs("g1", "g2"), value.Strs("g3"))}
	_, _, _, ip := setup(t, w, "r1", inputs)
	v := NewView("gkview")
	if err := v.AddGroup("rightbranch", "flattenx", "lookup", "describe"); err != nil {
		t.Fatal(err)
	}
	res, err := v.LineageThroughView(w, func(f Focus) (*Result, error) {
		return ip.Lineage("r1", trace.WorkflowProc, "common", value.Ix(0), f)
	}, "rightbranch")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 1 {
		t.Fatalf("gk view = %v", res)
	}
	e := res.Entries[0]
	if e.Proc != "flattenx" || e.Port != "lists" {
		t.Errorf("virtual input = %+v", e)
	}
	want := fmt.Sprint(inputs["genes"])
	if got := fmt.Sprint(e.Value); got != want {
		t.Errorf("virtual input value = %s, want %s", got, want)
	}
}
