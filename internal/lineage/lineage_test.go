package lineage

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/value"
	"repro/internal/workflow"
)

func testRegistry() *engine.Registry {
	r := engine.NewRegistry()
	r.Register("upper", func(args []value.Value) ([]value.Value, error) {
		s, _ := args[0].StringVal()
		return []value.Value{value.Str(strings.ToUpper(s))}, nil
	})
	r.Register("tolist", func(args []value.Value) ([]value.Value, error) {
		s, _ := args[0].StringVal()
		return []value.Value{value.Strs(s+"1", s+"2")}, nil
	})
	r.Register("combine", func(args []value.Value) ([]value.Value, error) {
		parts := make([]string, len(args))
		for i, a := range args {
			parts[i] = value.Encode(a)
		}
		return []value.Value{value.Str(strings.Join(parts, "+"))}, nil
	})
	r.Register("flatten", func(args []value.Value) ([]value.Value, error) {
		f, err := value.Flatten(args[0])
		if err != nil {
			return nil, err
		}
		return []value.Value{f}, nil
	})
	r.Register("id", func(args []value.Value) ([]value.Value, error) {
		return []value.Value{args[0]}, nil
	})
	return r
}

// fig3 is the paper's abstract workflow (Fig. 3).
func fig3() *workflow.Workflow {
	w := workflow.New("fig3")
	w.AddInput("v", 1).AddInput("w", 0).AddInput("c", 1)
	w.AddOutput("y", 2)
	w.AddProcessor("Q", "upper", []workflow.Port{workflow.In("X", 0)}, []workflow.Port{workflow.Out("Y", 0)})
	w.AddProcessor("R", "tolist", []workflow.Port{workflow.In("X", 0)}, []workflow.Port{workflow.Out("Y", 1)})
	w.AddProcessor("P", "combine",
		[]workflow.Port{workflow.In("X1", 0), workflow.In("X2", 1), workflow.In("X3", 0)},
		[]workflow.Port{workflow.Out("Y", 0)})
	w.Connect("", "v", "Q", "X")
	w.Connect("", "w", "R", "X")
	w.Connect("", "c", "P", "X2")
	w.Connect("Q", "Y", "P", "X1")
	w.Connect("R", "Y", "P", "X3")
	w.Connect("P", "Y", "", "y")
	return w
}

// setup runs a workflow, stores the trace, and returns everything a lineage
// test needs.
func setup(t *testing.T, w *workflow.Workflow, runID string, inputs map[string]value.Value) (*store.Store, *trace.Trace, *Naive, *IndexProj) {
	t.Helper()
	e := engine.New(testRegistry())
	_, tr, err := e.RunTrace(w, runID, inputs)
	if err != nil {
		t.Fatal(err)
	}
	s, err := store.OpenMemory()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	if err := s.StoreTrace(tr); err != nil {
		t.Fatal(err)
	}
	ip, err := NewIndexProj(s, w)
	if err != nil {
		t.Fatal(err)
	}
	return s, tr, NewNaive(s), ip
}

func fig3Inputs() map[string]value.Value {
	return map[string]value.Value{
		"v": value.Strs("a", "b", "c"),
		"w": value.Str("w"),
		"c": value.Strs("k"),
	}
}

// TestPaperWorkedExample reproduces the computation in §2.4:
// lin(⟨P:Y[h,l]⟩, {Q,R}) = {⟨Q:X[h]⟩, ⟨R:X[]⟩}.
func TestPaperWorkedExample(t *testing.T) {
	_, tr, ni, ip := setup(t, fig3(), "r1", fig3Inputs())
	focus := NewFocus("Q", "R")
	for h := 0; h < 3; h++ {
		for l := 0; l < 2; l++ {
			want := []string{
				fmt.Sprintf("<Q:X[%d]>@r1", h),
				"<R:X[]>@r1",
			}
			got, err := ni.Lineage("r1", "P", "Y", value.Ix(h, l), focus)
			if err != nil {
				t.Fatal(err)
			}
			if keys := got.Keys(); !equalStrings(keys, want) {
				t.Errorf("NI lin(P:Y[%d,%d]) = %v, want %v", h, l, keys, want)
			}
			got2, err := ip.Lineage("r1", "P", "Y", value.Ix(h, l), focus)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(got2) {
				t.Errorf("INDEXPROJ differs from NI at [%d,%d]: %v vs %v", h, l, got2, got)
			}
			mem, err := NewNaiveMem(tr).Lineage("P", "Y", value.Ix(h, l), focus)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(mem) {
				t.Errorf("NaiveMem differs from NI at [%d,%d]: %v vs %v", h, l, mem, got)
			}
		}
	}
}

// TestPaperCoarseExample reproduces the second computation in §2.4:
// lin(⟨P:Y[]⟩, {Q,R}) = {⟨Q:X[]⟩, ⟨R:X[]⟩} — here the coarse query returns
// every element-level binding of the focus inputs.
func TestPaperCoarseExample(t *testing.T) {
	_, _, ni, ip := setup(t, fig3(), "r1", fig3Inputs())
	focus := NewFocus("Q", "R")
	got, err := ni.Lineage("r1", "P", "Y", value.EmptyIndex, focus)
	if err != nil {
		t.Fatal(err)
	}
	// Fine-grained traces record Q:X element-wise, so the whole-value query
	// yields all three Q:X elements plus R:X.
	want := []string{"<Q:X[0]>@r1", "<Q:X[1]>@r1", "<Q:X[2]>@r1", "<R:X[]>@r1"}
	if keys := got.Keys(); !equalStrings(keys, want) {
		t.Errorf("coarse NI = %v, want %v", keys, want)
	}
	got2, err := ip.Lineage("r1", "P", "Y", value.EmptyIndex, focus)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(got2) {
		t.Errorf("INDEXPROJ coarse = %v, want %v", got2, got)
	}
}

func TestLineageFromWorkflowOutput(t *testing.T) {
	_, _, ni, ip := setup(t, fig3(), "r1", fig3Inputs())
	focus := NewFocus("Q")
	got, err := ni.Lineage("r1", trace.WorkflowProc, "y", value.Ix(2, 1), focus)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"<Q:X[2]>@r1"}
	if keys := got.Keys(); !equalStrings(keys, want) {
		t.Errorf("NI from workflow output = %v, want %v", keys, want)
	}
	got2, err := ip.Lineage("r1", trace.WorkflowProc, "y", value.Ix(2, 1), focus)
	if err != nil || !got.Equal(got2) {
		t.Errorf("INDEXPROJ from workflow output = %v (err %v), want %v", got2, err, got)
	}
}

func TestFocusedSubsetOfUnfocused(t *testing.T) {
	// Focusing on fewer processors returns a subset of the entries.
	_, _, ni, _ := setup(t, fig3(), "r1", fig3Inputs())
	small, err := ni.Lineage("r1", "P", "Y", value.Ix(0, 0), NewFocus("Q"))
	if err != nil {
		t.Fatal(err)
	}
	big, err := ni.Lineage("r1", "P", "Y", value.Ix(0, 0), NewFocus("Q", "R", "P"))
	if err != nil {
		t.Fatal(err)
	}
	if small.Len() >= big.Len() {
		t.Errorf("focused result not smaller: %d vs %d", small.Len(), big.Len())
	}
	bigKeys := map[string]bool{}
	for _, k := range big.Keys() {
		bigKeys[k] = true
	}
	for _, k := range small.Keys() {
		if !bigKeys[k] {
			t.Errorf("focused entry %s missing from unfocused result", k)
		}
	}
}

func TestEmptyFocus(t *testing.T) {
	_, _, ni, ip := setup(t, fig3(), "r1", fig3Inputs())
	got, err := ni.Lineage("r1", "P", "Y", value.Ix(0, 0), NewFocus())
	if err != nil || got.Len() != 0 {
		t.Errorf("empty focus NI = %v, %v", got, err)
	}
	got, err = ip.Lineage("r1", "P", "Y", value.Ix(0, 0), NewFocus())
	if err != nil || got.Len() != 0 {
		t.Errorf("empty focus INDEXPROJ = %v, %v", got, err)
	}
}

func TestGranularityLossThroughFlatten(t *testing.T) {
	// A flatten (list-to-list black box) destroys granularity: everything
	// downstream depends on the whole upstream collection.
	w := workflow.New("gl")
	w.AddInput("lists", 2)
	w.AddOutput("out", 1)
	w.AddProcessor("gen", "tolist", []workflow.Port{workflow.In("s", 0)}, []workflow.Port{workflow.Out("l", 1)})
	w.AddProcessor("fl", "flatten", []workflow.Port{workflow.In("in", 2)}, []workflow.Port{workflow.Out("out", 1)})
	w.AddProcessor("map", "upper", []workflow.Port{workflow.In("s", 0)}, []workflow.Port{workflow.Out("r", 0)})
	w.AddInput("seed", 0)
	_ = w
	w.Connect("", "lists", "fl", "in")
	w.Connect("fl", "out", "map", "s")
	w.Connect("map", "r", "", "out")
	// gen is disconnected from the main path: give it the seed input.
	w.Connect("", "seed", "gen", "s")

	inputs := map[string]value.Value{
		"lists": value.List(value.Strs("a", "b"), value.Strs("c")),
		"seed":  value.Str("x"),
	}
	_, _, ni, ip := setup(t, w, "r1", inputs)
	focus := NewFocus("fl")
	got, err := ni.Lineage("r1", "map", "r", value.Ix(1), focus)
	if err != nil {
		t.Fatal(err)
	}
	// The only available granularity at fl is the whole input collection.
	want := []string{"<fl:in[]>@r1"}
	if keys := got.Keys(); !equalStrings(keys, want) {
		t.Errorf("NI through flatten = %v, want %v", keys, want)
	}
	got2, err := ip.Lineage("r1", "map", "r", value.Ix(1), focus)
	if err != nil || !got.Equal(got2) {
		t.Errorf("INDEXPROJ through flatten = %v (err %v)", got2, err)
	}
}

func TestMultiRun(t *testing.T) {
	w := fig3()
	e := engine.New(testRegistry())
	s, err := store.OpenMemory()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	var runIDs []string
	for r := 0; r < 4; r++ {
		runID := fmt.Sprintf("run%d", r)
		runIDs = append(runIDs, runID)
		inputs := map[string]value.Value{
			"v": value.Strs(fmt.Sprintf("a%d", r), fmt.Sprintf("b%d", r)),
			"w": value.Str(fmt.Sprintf("w%d", r)),
			"c": value.Strs("k"),
		}
		_, tr, err := e.RunTrace(w, runID, inputs)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.StoreTrace(tr); err != nil {
			t.Fatal(err)
		}
	}
	ni := NewNaive(s)
	ip, err := NewIndexProj(s, w)
	if err != nil {
		t.Fatal(err)
	}
	focus := NewFocus("Q")
	a, err := ni.LineageMultiRun(runIDs, "P", "Y", value.Ix(1, 0), focus)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ip.LineageMultiRun(runIDs, "P", "Y", value.Ix(1, 0), focus)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Errorf("multi-run NI %v != INDEXPROJ %v", a, b)
	}
	if a.Len() != 4 {
		t.Errorf("multi-run entries = %d, want 4 (one per run)", a.Len())
	}
	// The plan is compiled once and shared across runs.
	if ip.CacheSize() != 1 {
		t.Errorf("plan cache size = %d, want 1", ip.CacheSize())
	}
	// Per-run results stay scoped.
	one, err := ip.Lineage("run2", "P", "Y", value.Ix(1, 0), focus)
	if err != nil || one.Len() != 1 {
		t.Fatalf("single-run result = %v, %v", one, err)
	}
	if one.Entries()[0].RunID != "run2" {
		t.Errorf("entry run = %s", one.Entries()[0].RunID)
	}
}

func TestPlanCachingAndProbeCount(t *testing.T) {
	_, _, _, ip := setup(t, fig3(), "r1", fig3Inputs())
	focus := NewFocus("Q", "R")
	plan, err := ip.Compile("P", "Y", value.Ix(0, 0), focus)
	if err != nil {
		t.Fatal(err)
	}
	// Probes: Q:X and R:X (plus none for P, which is unfocused).
	if len(plan.Probes) != 2 {
		t.Errorf("probes = %v", plan.Probes)
	}
	again, err := ip.Compile("P", "Y", value.Ix(0, 0), focus)
	if err != nil {
		t.Fatal(err)
	}
	if plan != again {
		t.Error("plan not cached")
	}
	// A different index compiles a different plan.
	other, err := ip.Compile("P", "Y", value.Ix(1, 0), focus)
	if err != nil {
		t.Fatal(err)
	}
	if other == plan {
		t.Error("distinct queries share a plan")
	}
	if ip.CacheSize() != 2 {
		t.Errorf("cache size = %d", ip.CacheSize())
	}
}

func TestQueryCountsFocusedVsNaive(t *testing.T) {
	// The core efficiency claim: INDEXPROJ's trace-query count depends on
	// the focus size, NI's on the traversal size.
	w := workflow.New("chain")
	w.AddInput("in", 1)
	w.AddOutput("out", 1)
	const L = 20
	prev := ""
	prevPort := "in"
	for i := 0; i < L; i++ {
		name := fmt.Sprintf("s%02d", i)
		w.AddProcessor(name, "upper", []workflow.Port{workflow.In("x", 0)}, []workflow.Port{workflow.Out("y", 0)})
		w.Connect(prev, prevPort, name, "x")
		prev, prevPort = name, "y"
	}
	w.Connect(prev, prevPort, "", "out")
	inputs := map[string]value.Value{"in": value.Strs("a", "b", "c", "d")}
	_, _, ni, ip := setup(t, w, "r1", inputs)
	focus := NewFocus("s00")

	store.ResetQueryCount()
	ra, err := ni.Lineage("r1", trace.WorkflowProc, "out", value.Ix(2), focus)
	if err != nil {
		t.Fatal(err)
	}
	niQueries := store.ResetQueryCount()

	rb, err := ip.Lineage("r1", trace.WorkflowProc, "out", value.Ix(2), focus)
	if err != nil {
		t.Fatal(err)
	}
	ipQueries := store.ResetQueryCount()

	if !ra.Equal(rb) {
		t.Fatalf("results differ: %v vs %v", ra, rb)
	}
	if ra.Len() != 1 {
		t.Errorf("result = %v", ra)
	}
	if niQueries < int64(L) {
		t.Errorf("NI issued %d queries, expected at least %d (one per hop)", niQueries, L)
	}
	if ipQueries > 4 {
		t.Errorf("INDEXPROJ issued %d queries for a single focus processor", ipQueries)
	}
}

func TestCompositeLineage(t *testing.T) {
	sub := workflow.New("inner")
	sub.AddInput("a", 0)
	sub.AddOutput("b", 1)
	sub.AddProcessor("mk", "tolist", []workflow.Port{workflow.In("x", 0)}, []workflow.Port{workflow.Out("y", 1)})
	sub.AddProcessor("up", "upper", []workflow.Port{workflow.In("s", 0)}, []workflow.Port{workflow.Out("r", 0)})
	sub.Connect("", "a", "mk", "x")
	sub.Connect("mk", "y", "up", "s")
	sub.Connect("up", "r", "", "b")

	w := workflow.New("outer")
	w.AddInput("in", 1)
	w.AddOutput("out", 2)
	w.AddComposite("comp", sub)
	w.AddProcessor("pre", "upper", []workflow.Port{workflow.In("x", 0)}, []workflow.Port{workflow.Out("y", 0)})
	w.Connect("", "in", "pre", "x")
	w.Connect("pre", "y", "comp", "a")
	w.Connect("comp", "b", "", "out")

	inputs := map[string]value.Value{"in": value.Strs("a", "b")}
	_, tr, ni, ip := setup(t, w, "r1", inputs)

	// Focus on the composite itself (black-box view).
	focus := NewFocus("comp")
	a, err := ni.Lineage("r1", trace.WorkflowProc, "out", value.Ix(1, 0), focus)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ip.Lineage("r1", trace.WorkflowProc, "out", value.Ix(1, 0), focus)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Errorf("composite black-box: NI %v != INDEXPROJ %v", a, b)
	}
	if want := []string{"<comp:a[1]>@r1"}; !equalStrings(a.Keys(), want) {
		t.Errorf("composite black-box = %v, want %v", a.Keys(), want)
	}

	// Focus inside the composite.
	focus = NewFocus("comp/up")
	a, err = ni.Lineage("r1", trace.WorkflowProc, "out", value.Ix(1, 0), focus)
	if err != nil {
		t.Fatal(err)
	}
	b, err = ip.Lineage("r1", trace.WorkflowProc, "out", value.Ix(1, 0), focus)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Errorf("composite inner focus: NI %v != INDEXPROJ %v", a, b)
	}
	if a.Len() == 0 {
		t.Error("inner focus returned nothing")
	}
	mem, err := NewNaiveMem(tr).Lineage(trace.WorkflowProc, "out", value.Ix(1, 0), focus)
	if err != nil || !a.Equal(mem) {
		t.Errorf("NaiveMem composite = %v (err %v), want %v", mem, err, a)
	}

	// Upstream focus through the composite.
	focus = NewFocus("pre")
	a, err = ni.Lineage("r1", trace.WorkflowProc, "out", value.Ix(0, 1), focus)
	if err != nil {
		t.Fatal(err)
	}
	b, err = ip.Lineage("r1", trace.WorkflowProc, "out", value.Ix(0, 1), focus)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Errorf("upstream of composite: NI %v != INDEXPROJ %v", a, b)
	}
	if want := []string{"<pre:x[0]>@r1"}; !equalStrings(a.Keys(), want) {
		t.Errorf("upstream of composite = %v, want %v", a.Keys(), want)
	}

	// A query starting inside the composite.
	focus = NewFocus("comp/mk")
	a, err = ni.Lineage("r1", "comp/up", "r", value.Ix(1, 0), focus)
	if err != nil {
		t.Fatal(err)
	}
	b, err = ip.Lineage("r1", "comp/up", "r", value.Ix(1, 0), focus)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Errorf("start inside composite: NI %v != INDEXPROJ %v", a, b)
	}
}

func TestDotLineage(t *testing.T) {
	w := workflow.New("dotwf")
	w.AddInput("a", 1).AddInput("b", 1)
	w.AddOutput("out", 1)
	w.AddProcessor("pa", "upper", []workflow.Port{workflow.In("x", 0)}, []workflow.Port{workflow.Out("y", 0)})
	w.AddProcessor("pb", "upper", []workflow.Port{workflow.In("x", 0)}, []workflow.Port{workflow.Out("y", 0)})
	zip := w.AddProcessor("zip", "combine",
		[]workflow.Port{workflow.In("l", 0), workflow.In("r", 0)},
		[]workflow.Port{workflow.Out("o", 0)})
	zip.Dot = true
	w.Connect("", "a", "pa", "x")
	w.Connect("", "b", "pb", "x")
	w.Connect("pa", "y", "zip", "l")
	w.Connect("pb", "y", "zip", "r")
	w.Connect("zip", "o", "", "out")

	inputs := map[string]value.Value{
		"a": value.Strs("a0", "a1", "a2"),
		"b": value.Strs("b0", "b1", "b2"),
	}
	_, tr, ni, ip := setup(t, w, "r1", inputs)
	focus := NewFocus("pa", "pb")
	a, err := ni.Lineage("r1", trace.WorkflowProc, "out", value.Ix(1), focus)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ip.Lineage("r1", trace.WorkflowProc, "out", value.Ix(1), focus)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Errorf("dot lineage: NI %v != INDEXPROJ %v", a, b)
	}
	// Element 1 of the zip depends only on element 1 of each branch.
	want := []string{"<pa:x[1]>@r1", "<pb:x[1]>@r1"}
	if keys := a.Keys(); !equalStrings(keys, want) {
		t.Errorf("dot lineage = %v, want %v", keys, want)
	}
	mem, err := NewNaiveMem(tr).Lineage(trace.WorkflowProc, "out", value.Ix(1), focus)
	if err != nil || !a.Equal(mem) {
		t.Errorf("NaiveMem dot = %v (err %v)", mem, err)
	}
}

func TestResultOps(t *testing.T) {
	r := NewResult()
	e := Entry{RunID: "r", Proc: "P", Port: "X", Index: value.Ix(1), Value: value.Strs("a", "b")}
	r.Add(e)
	r.Add(e) // idempotent
	if r.Len() != 1 {
		t.Errorf("Len = %d", r.Len())
	}
	el, err := r.Entries()[0].Element()
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := el.StringVal(); s != "b" {
		t.Errorf("Element = %s", el)
	}
	o := NewResult()
	o.Add(Entry{RunID: "r", Proc: "P", Port: "X", Index: value.Ix(2), Value: value.Strs("a", "b", "c")})
	r.Merge(o)
	if r.Len() != 2 {
		t.Errorf("after merge Len = %d", r.Len())
	}
	if r.Equal(o) {
		t.Error("unequal results reported equal")
	}
	if !strings.Contains(r.String(), "<P:X[1]>@r") {
		t.Errorf("String = %s", r.String())
	}
	f := NewFocus("b", "a")
	if f.Key() != "a\x00b" {
		t.Errorf("Focus.Key = %q", f.Key())
	}
}

func TestCompileErrors(t *testing.T) {
	_, _, _, ip := setup(t, fig3(), "r1", fig3Inputs())
	if _, err := ip.Compile("nosuch", "Y", value.EmptyIndex, NewFocus()); err == nil {
		t.Error("unknown processor accepted")
	}
	if _, err := ip.Compile("P", "nosuch", value.EmptyIndex, NewFocus()); err == nil {
		t.Error("unknown port accepted")
	}
	if _, err := ip.Compile(trace.WorkflowProc, "nosuch", value.EmptyIndex, NewFocus()); err == nil {
		t.Error("unknown workflow port accepted")
	}
	if _, err := ip.Compile("P/inner", "x", value.EmptyIndex, NewFocus()); err == nil {
		t.Error("descent through non-composite accepted")
	}
	// Querying a workflow input is legal and empty.
	plan, err := ip.Compile(trace.WorkflowProc, "v", value.EmptyIndex, NewFocus("Q"))
	if err != nil || len(plan.Probes) != 0 {
		t.Errorf("workflow-input query = %v, %v", plan, err)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestCombinatorExpressionLineage(t *testing.T) {
	// (g ⊗ w) ⊙ m: genes cross weights, and a matrix of modifiers zips
	// against the resulting 2-deep index space — footnote 7's "complex
	// expressions". Both algorithms must agree on fine-grained lineage.
	w := workflow.New("comb")
	w.AddInput("g", 1).AddInput("wt", 1).AddInput("m", 2)
	w.AddOutput("out", 2)
	p := w.AddProcessor("mix", "combine",
		[]workflow.Port{workflow.In("a", 0), workflow.In("b", 0), workflow.In("c", 0)},
		[]workflow.Port{workflow.Out("r", 0)})
	p.Iter = workflow.IterDot(
		workflow.IterCross(workflow.IterLeaf("a"), workflow.IterLeaf("b")),
		workflow.IterLeaf("c"),
	)
	w.Connect("", "g", "mix", "a")
	w.Connect("", "wt", "mix", "b")
	w.Connect("", "m", "mix", "c")
	w.Connect("mix", "r", "", "out")

	inputs := map[string]value.Value{
		"g":  value.Strs("g0", "g1"),
		"wt": value.Strs("w0", "w1", "w2"),
		"m": value.List(
			value.Strs("m00", "m01", "m02"),
			value.Strs("m10", "m11", "m12"),
		),
	}
	_, tr, ni, ip := setup(t, w, "r1", inputs)
	focus := NewFocus("mix")
	for _, q := range []value.Index{value.Ix(1, 2), value.Ix(0, 0), value.Ix(1), value.EmptyIndex} {
		a, err := ni.Lineage("r1", trace.WorkflowProc, "out", q, focus)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ip.Lineage("r1", trace.WorkflowProc, "out", q, focus)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(b) {
			t.Fatalf("combinator lineage at %v: NI %v != INDEXPROJ %v", q, a, b)
		}
	}
	// Element [1,2] depends on g[1], wt[2], and the zipped m[1,2].
	res, err := ip.Lineage("r1", trace.WorkflowProc, "out", value.Ix(1, 2), focus)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"<mix:a[1]>@r1", "<mix:b[2]>@r1", "<mix:c[1,2]>@r1"}
	if keys := res.Keys(); !equalStrings(keys, want) {
		t.Errorf("combinator lineage = %v, want %v", keys, want)
	}
	// The in-memory reference agrees too.
	mem, err := NewNaiveMem(tr).Lineage(trace.WorkflowProc, "out", value.Ix(1, 2), focus)
	if err != nil || !res.Equal(mem) {
		t.Errorf("NaiveMem combinator = %v (err %v)", mem, err)
	}
}
