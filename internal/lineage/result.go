// Package lineage implements the lineage query model of the paper: the
// recursive definition of lin(⟨P:Y[p], v⟩, 𝒫) over provenance graphs
// (Def. 1, §2.4), the naïve extensional algorithm NI that evaluates it by
// traversing the stored trace (§2.4, §4), an independent in-memory reference
// implementation over raw traces, and the INDEXPROJ algorithm (Alg. 2, §3.3)
// that replaces the trace traversal with a traversal of the workflow
// specification graph plus the index projection rule, touching the trace
// only at focus processors.
//
// All three implementations return identical results on identical stores —
// a property enforced by randomized tests — while issuing very different
// numbers of trace queries.
package lineage

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/value"
)

// Entry is one element of a lineage answer: a fine-grained input binding
// ⟨P:X[p], v⟩ of a focus processor encountered on a path from the query
// binding to the sources. Value holds the whole port value; Index addresses
// the relevant element within it (net of any nested-dataflow context).
type Entry struct {
	RunID string
	Proc  string
	Port  string
	Index value.Index
	Ctx   int
	Value value.Value
}

// Element returns the addressed element of the entry's port value.
func (e Entry) Element() (value.Value, error) {
	return e.Value.At(e.Index.Slice(e.Ctx, len(e.Index)))
}

func (e Entry) String() string {
	proc := e.Proc
	if proc == "" {
		proc = "workflow"
	}
	return fmt.Sprintf("<%s:%s%s>@%s", proc, e.Port, e.Index, e.RunID)
}

type entryKey struct {
	runID string
	proc  string
	port  string
	idx   string
}

// Result is a set of lineage entries, deduplicated by (run, proc, port,
// index). A partial-mode multi-run query additionally marks the runs it
// could not answer (every replica of their shard unavailable) as degraded;
// Equal compares entries only, so a degraded answer still compares equal to
// the same entries computed healthily — the marker is delivery metadata, not
// part of the lineage relation.
type Result struct {
	entries  map[entryKey]Entry
	degraded map[string]bool
}

// NewResult returns an empty result set.
func NewResult() *Result { return &Result{entries: make(map[entryKey]Entry)} }

// Add inserts an entry (idempotently).
func (r *Result) Add(e Entry) {
	k := entryKey{runID: e.RunID, proc: e.Proc, port: e.Port, idx: e.Index.String()}
	if _, ok := r.entries[k]; !ok {
		r.entries[k] = e
	}
}

// Len returns the number of distinct entries.
func (r *Result) Len() int { return len(r.entries) }

// Entries returns the entries sorted by (run, proc, port, index), suitable
// for display and comparison.
func (r *Result) Entries() []Entry {
	out := make([]Entry, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.RunID != b.RunID {
			return a.RunID < b.RunID
		}
		if a.Proc != b.Proc {
			return a.Proc < b.Proc
		}
		if a.Port != b.Port {
			return a.Port < b.Port
		}
		return a.Index.Compare(b.Index) < 0
	})
	return out
}

// Keys returns the sorted entry identities as strings (values omitted);
// convenient for test comparison.
func (r *Result) Keys() []string {
	es := r.Entries()
	out := make([]string, len(es))
	for i, e := range es {
		out[i] = e.String()
	}
	return out
}

// Equal reports whether two results contain the same entries with equal
// values.
func (r *Result) Equal(o *Result) bool {
	if len(r.entries) != len(o.entries) {
		return false
	}
	for k, e := range r.entries {
		oe, ok := o.entries[k]
		if !ok || !value.Equal(e.Value, oe.Value) {
			return false
		}
	}
	return true
}

// Merge adds every entry of o into r, and unions the degraded-run sets.
func (r *Result) Merge(o *Result) {
	for _, e := range o.entries {
		r.Add(e)
	}
	for run := range o.degraded {
		r.MarkDegraded(run)
	}
}

// MarkDegraded records runs whose answer is missing or incomplete because
// their shard was unavailable (partial mode).
func (r *Result) MarkDegraded(runIDs ...string) {
	if r.degraded == nil {
		r.degraded = make(map[string]bool)
	}
	for _, run := range runIDs {
		r.degraded[run] = true
	}
}

// Degraded reports whether any run's answer is missing or incomplete.
func (r *Result) Degraded() bool { return len(r.degraded) > 0 }

// DegradedRuns returns the degraded runs, sorted.
func (r *Result) DegradedRuns() []string {
	if len(r.degraded) == 0 {
		return nil
	}
	out := make([]string, 0, len(r.degraded))
	for run := range r.degraded {
		out = append(out, run)
	}
	sort.Strings(out)
	return out
}

// String renders the result compactly for diagnostics.
func (r *Result) String() string {
	return "{" + strings.Join(r.Keys(), ", ") + "}"
}

// Focus is the set 𝒫 of "interesting" processors of a focused query, by
// path-qualified trace name (e.g. "get_pathways_by_genes", "comp/up").
type Focus map[string]bool

// NewFocus builds a focus set from processor names.
func NewFocus(procs ...string) Focus {
	f := make(Focus, len(procs))
	for _, p := range procs {
		f[p] = true
	}
	return f
}

// Names returns the focus processors, sorted.
func (f Focus) Names() []string {
	out := make([]string, 0, len(f))
	for p := range f {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Key returns a canonical cache key for the focus set.
func (f Focus) Key() string { return strings.Join(f.Names(), "\x00") }
