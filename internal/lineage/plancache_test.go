package lineage

import (
	"sync"
	"testing"

	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/value"
)

// compileN compiles the query binding P:Y[i] for i in [0, n) through one
// evaluator; every distinct i is a distinct cache key.
func compileN(t *testing.T, ip *IndexProj, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := ip.Compile("P", "Y", value.Ix(i), NewFocus("Q", "R")); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSharedPlanCacheTenantIsolation proves two evaluators sharing one cache
// under different scopes never observe each other's plans: tenant B's first
// compilation of a binding tenant A already cached must be a miss, and the
// cache ends up holding both tenants' entries separately.
func TestSharedPlanCacheTenantIsolation(t *testing.T) {
	_, _, _, ipA := setup(t, fig3(), "r1", fig3Inputs())
	_, _, _, ipB := setup(t, fig3(), "r2", fig3Inputs())
	pc := NewSharedPlanCache(64)
	ipA.UsePlanCache(pc, "tenantA")
	ipB.UsePlanCache(pc, "tenantB")

	compileN(t, ipA, 1) // miss: first compilation anywhere
	compileN(t, ipA, 1) // hit: tenant A reuses its own plan
	compileN(t, ipB, 1) // must be a miss: same binding, different tenant

	if got := pc.Hits(); got != 1 {
		t.Errorf("hits = %d, want 1 (tenant B must not hit tenant A's plan)", got)
	}
	if got := pc.Misses(); got != 2 {
		t.Errorf("misses = %d, want 2", got)
	}
	if got := pc.Len(); got != 2 {
		t.Errorf("cache holds %d plans, want 2 (one per tenant)", got)
	}
}

// TestSharedPlanCacheCounterInvariants checks the accounting identities under
// a single-threaded workload: every Compile is exactly one hit or one miss,
// every miss inserts, and the size is inserts minus evictions.
func TestSharedPlanCacheCounterInvariants(t *testing.T) {
	_, _, _, ip := setup(t, fig3(), "r1", fig3Inputs())
	pc := NewSharedPlanCache(64)
	ip.UsePlanCache(pc, "t")

	const distinct, rounds = 7, 3
	for r := 0; r < rounds; r++ {
		compileN(t, ip, distinct)
	}
	calls := int64(distinct * rounds)
	if pc.Hits()+pc.Misses() != calls {
		t.Errorf("hits(%d) + misses(%d) != compile calls(%d)", pc.Hits(), pc.Misses(), calls)
	}
	if pc.Misses() != distinct {
		t.Errorf("misses = %d, want %d (one per distinct binding)", pc.Misses(), distinct)
	}
	if got := int64(pc.Len()) + pc.Evictions(); got != pc.Misses() {
		t.Errorf("len(%d) + evictions(%d) != inserts(%d)", pc.Len(), pc.Evictions(), pc.Misses())
	}
}

// TestSharedPlanCacheConcurrentInvariants hammers one shared cache from many
// goroutines across two tenants (run with -race). The per-call identity and
// the size bound must hold regardless of interleaving; racing first
// compilations of one key may each count a miss, so misses is only bounded
// below by the distinct-key count.
func TestSharedPlanCacheConcurrentInvariants(t *testing.T) {
	_, _, _, ipA := setup(t, fig3(), "r1", fig3Inputs())
	_, _, _, ipB := setup(t, fig3(), "r2", fig3Inputs())
	pc := NewSharedPlanCache(256)
	ipA.UsePlanCache(pc, "tenantA")
	ipB.UsePlanCache(pc, "tenantB")

	const workers, perWorker, distinct = 8, 40, 5
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ip := ipA
			if w%2 == 1 {
				ip = ipB
			}
			for i := 0; i < perWorker; i++ {
				if _, err := ip.Compile("P", "Y", value.Ix(i%distinct), NewFocus("Q")); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	calls := int64(workers * perWorker)
	if pc.Hits()+pc.Misses() != calls {
		t.Errorf("hits(%d) + misses(%d) != compile calls(%d)", pc.Hits(), pc.Misses(), calls)
	}
	if pc.Misses() < 2*distinct {
		t.Errorf("misses = %d, want >= %d (each tenant compiles %d distinct keys)", pc.Misses(), 2*distinct, distinct)
	}
	if got := pc.Len(); got != 2*distinct {
		t.Errorf("cache holds %d plans, want %d", got, 2*distinct)
	}
}

// TestSharedPlanCacheEvictionChurn runs many distinct bindings through a
// tiny cache: the size must respect the capacity, evictions must account for
// the overflow exactly, and recency must decide who survives.
func TestSharedPlanCacheEvictionChurn(t *testing.T) {
	_, _, _, ip := setup(t, fig3(), "r1", fig3Inputs())
	const capacity, distinct = 4, 20
	pc := NewSharedPlanCache(capacity)
	ip.UsePlanCache(pc, "t")

	compileN(t, ip, distinct)
	if got := pc.Len(); got != capacity {
		t.Errorf("cache holds %d plans, want capacity %d", got, capacity)
	}
	if got := pc.Evictions(); got != distinct-capacity {
		t.Errorf("evictions = %d, want %d", got, distinct-capacity)
	}

	// The most recent `capacity` bindings survive; older ones were evicted.
	h0, m0 := pc.Hits(), pc.Misses()
	for i := distinct - capacity; i < distinct; i++ {
		if _, err := ip.Compile("P", "Y", value.Ix(i), NewFocus("Q", "R")); err != nil {
			t.Fatal(err)
		}
	}
	if got := pc.Hits() - h0; got != capacity {
		t.Errorf("recent bindings: %d hits, want %d", got, capacity)
	}
	if _, err := ip.Compile("P", "Y", value.Ix(0), NewFocus("Q", "R")); err != nil {
		t.Fatal(err)
	}
	if got := pc.Misses() - m0; got != 1 {
		t.Errorf("evicted binding: %d misses, want 1 (must recompile)", got)
	}
}

// TestPlanCacheTopologyGeneration is the regression test for the plan-cache
// key fix: the key now pins the store's topology generation, so an evaluator
// over a store reopened with a different shard ring cannot be served plans
// cached against the old ring — even under the same tenant scope. Before the
// fix both evaluators keyed only on the binding, and the n=4 evaluator's
// first compile hit the n=1 entry.
func TestPlanCacheTopologyGeneration(t *testing.T) {
	w := fig3()
	open := func(n int) *shard.ShardedStore {
		st, err := shard.OpenMemory(n)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { st.Close() })
		return st
	}
	pc := NewSharedPlanCache(64)
	newIP := func(q store.LineageQuerier) *IndexProj {
		ip, err := NewIndexProj(q, w)
		if err != nil {
			t.Fatal(err)
		}
		ip.UsePlanCache(pc, "tenantA") // same tenant: the store was "reopened"
		return ip
	}

	ip1, ip4 := newIP(open(1)), newIP(open(4))
	if g1, g4 := ip1.TopologyGen(), ip4.TopologyGen(); g1 == g4 {
		t.Fatalf("1- and 4-shard stores report the same topology generation %q", g1)
	}

	compileN(t, ip1, 1)
	if pc.Misses() != 1 {
		t.Fatalf("first compile: misses = %d, want 1", pc.Misses())
	}
	compileN(t, ip4, 1) // the reopened-with-a-different-ring evaluator
	if got := pc.Hits(); got != 0 {
		t.Errorf("hits = %d, want 0: a 4-shard evaluator was served a plan cached under the 1-shard ring", got)
	}
	if got := pc.Misses(); got != 2 {
		t.Errorf("misses = %d, want 2", got)
	}

	// Same topology generation, same scope: sharing works. A second 4-shard
	// evaluator (a true reopen with the identical ring) hits immediately.
	compileN(t, newIP(open(4)), 1)
	if got := pc.Hits(); got != 1 {
		t.Errorf("identical-ring reopen: hits = %d, want 1", got)
	}

	// Single (unsharded) stores share one constant generation.
	st, err := store.OpenMemory()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	if got := topologyGen(st); got != "single" {
		t.Errorf("single-store topology generation = %q, want %q", got, "single")
	}
}

// TestPrivatePlanCacheKeysTopology checks the fix also reaches the default
// per-evaluator cache path: keys include the generation (harmless constant
// prefix for a fixed store) and CacheSize still reports the private cache.
func TestPrivatePlanCacheKeysTopology(t *testing.T) {
	_, _, _, ip := setup(t, fig3(), "r1", fig3Inputs())
	if ip.TopologyGen() != "single" {
		t.Fatalf("TopologyGen = %q, want single", ip.TopologyGen())
	}
	for i := 0; i < 3; i++ {
		compileN(t, ip, 2)
	}
	if got := ip.CacheSize(); got != 2 {
		t.Errorf("CacheSize = %d, want 2", got)
	}
}
