package lineage

import "repro/internal/obs"

// Metric handles for the lineage executors, resolved once at package init.
// The stage decomposition mirrors the paper's cost model (§4, Fig. 4):
// plan_ns is t1 (the specification-graph traversal), probe_ns is t2 (the
// store probes); NI has no plan phase, so its split is traverse vs value
// materialization. On sequential paths plan+probe <= query and
// traverse+probe <= query hold exactly; the parallel executor's probe spans
// overlap, so only their sum-of-stages is meaningful there.
var (
	ipQueries   = obs.C("lineage.indexproj.queries")
	ipPlanNs    = obs.H("lineage.indexproj.plan_ns")
	ipProbeNs   = obs.H("lineage.indexproj.probe_ns")
	ipQueryNs   = obs.H("lineage.indexproj.query_ns")
	ipProbes    = obs.C("lineage.indexproj.probes")
	ipBindings  = obs.C("lineage.indexproj.bindings")
	ipCacheHits = obs.C("lineage.indexproj.plan_cache_hits")
	ipCacheMiss = obs.C("lineage.indexproj.plan_cache_misses")

	niQueries    = obs.C("lineage.ni.queries")
	niQueryNs    = obs.H("lineage.ni.query_ns")
	niTraverseNs = obs.H("lineage.ni.traverse_ns")
	niProbeNs    = obs.H("lineage.ni.probe_ns")
	niNodes      = obs.C("lineage.ni.nodes")

	mrQueryNs = obs.H("lineage.multirun.query_ns")
	mrMergeNs = obs.H("lineage.multirun.merge_ns")
	mrTasks   = obs.C("lineage.multirun.tasks")
	// mrDegraded counts runs answered in degraded mode: a partial-mode
	// multi-run query proceeded although every replica of the runs' shard was
	// unavailable. Named in the shard.* family next to failover/hedge/
	// breaker_open — one dashboard row tells the whole failover story — even
	// though the executor is what detects the condition.
	mrDegraded = obs.C("shard.degraded")

	// Shared cross-request plan cache (plancache.go). The per-evaluator
	// hit/miss counters above keep counting too: they account Compile calls,
	// these account SharedPlanCache traffic (several evaluators may share
	// one cache).
	pcHits      = obs.C("lineage.plancache.hits")
	pcMisses    = obs.C("lineage.plancache.misses")
	pcEvictions = obs.C("lineage.plancache.evictions")
)
