package lineage

import (
	"context"
	"fmt"

	"repro/internal/obs"
	"repro/internal/store"
)

// This file wires the store's columnar projection (internal/colstore, via
// store.ColumnScanner) into the multi-run executor as a vectorized probe
// stage: a chunk of runs is evaluated against their column segments in one
// pass — zone-map filter per segment, then a tight loop over the fixed-width
// IdxKey column — instead of one B-tree index-range scan per chunk. Runs
// without a fresh segment fall back to the batched row probes inside the
// same chunk, so the answer is byte-identical to the row path regardless of
// which runs have segments.

// ColScanMode selects the executor's probe stage.
type ColScanMode int

const (
	// ColScanAuto (the zero value) applies the cost rule: use column
	// segments when the store has them and the query spans at least
	// DefaultColScanMinRuns runs.
	ColScanAuto ColScanMode = iota
	// ColScanOn always uses column segments when the store supports them
	// (runs without a segment still fall back to row scans).
	ColScanOn
	// ColScanOff never touches column segments: the row-probe path of PR 6,
	// unchanged.
	ColScanOff
)

// String renders the mode as its flag spelling.
func (m ColScanMode) String() string {
	switch m {
	case ColScanOn:
		return "on"
	case ColScanOff:
		return "off"
	default:
		return "auto"
	}
}

// ParseColScanMode parses a -colscan flag value. Boolean spellings are
// accepted so `-colscan=false` reads naturally: false/0 disable, true/1
// force-enable.
func ParseColScanMode(s string) (ColScanMode, error) {
	switch s {
	case "", "auto":
		return ColScanAuto, nil
	case "on", "true", "1":
		return ColScanOn, nil
	case "off", "false", "0":
		return ColScanOff, nil
	}
	return ColScanAuto, fmt.Errorf("lineage: bad colscan mode %q (want auto, on or off)", s)
}

// DefaultColScanMinRuns is the auto-mode run-count threshold. The batched
// row probe scans the xin_ppi index across every stored run and filters,
// so its cost tracks the store size; the columnar stage touches only the
// queried runs' segments. Below a handful of runs the segment lookups and
// the fallback bookkeeping wash out the savings, so auto mode stays on the
// row path for small queries.
const DefaultColScanMinRuns = 8

var mrColScanChunks = obs.C("lineage.multirun.colscan_chunks")

// colScanner resolves the ColScan option against the attached store: the
// returned scanner is non-nil exactly when the vectorized stage should run.
func (ip *IndexProj) colScanner(nRuns int, opt MultiRunOptions) store.ColumnScanner {
	if opt.ColScan == ColScanOff {
		return nil
	}
	cs, ok := ip.q.(store.ColumnScanner)
	if !ok {
		return nil
	}
	if opt.ColScan == ColScanOn {
		return cs
	}
	// Auto: the cost rule. Selectivity of a multi-run probe is fixed by the
	// plan, so the deciding factor is how many runs amortize the per-query
	// segment bookkeeping — and whether there are any segments at all.
	if nRuns < DefaultColScanMinRuns || !cs.ColScanAvailable() {
		return nil
	}
	return cs
}

// executeColScanChunk is the vectorized probe stage: one probe against one
// chunk of runs, answered from column segments where possible and from the
// batched row probes for the rest, then one batched value fetch. Binding
// order per run matches the row path exactly, so results are byte-identical.
// Column segments load lazily from disk at query time, so threading ctx
// through (store.ContextColumnScanner) is what bounds a stalled disk here.
func (ip *IndexProj) executeColScanChunk(ctx context.Context, result *Result, pr Probe, runIDs []string, cs store.ColumnScanner) error {
	mrColScanChunks.Add(1)
	var (
		byRun   map[string][]store.Binding
		missing []string
		err     error
	)
	if ccs, ok := cs.(store.ContextColumnScanner); ok {
		byRun, missing, err = ccs.ColScanBindingsCtx(ctx, runIDs, pr.Proc, pr.Port, pr.Index)
	} else {
		byRun, missing, err = cs.ColScanBindings(runIDs, pr.Proc, pr.Port, pr.Index)
	}
	if err != nil {
		return err
	}
	if len(missing) > 0 {
		sub, err := ip.inputBindingsBatch(ctx, missing, pr.Proc, pr.Port, pr.Index)
		if err != nil {
			return err
		}
		for r, bs := range sub {
			byRun[r] = bs
		}
	}
	var staged []Entry
	var refs []store.ValueRef
	for _, runID := range runIDs {
		for _, b := range byRun[runID] {
			staged = append(staged, Entry{RunID: b.RunID, Proc: b.Proc, Port: b.Port, Index: b.Index, Ctx: b.Ctx})
			refs = append(refs, store.ValueRef{RunID: b.RunID, ValID: b.ValID})
		}
	}
	if len(staged) == 0 {
		return nil
	}
	vals, err := ip.valuesBatch(ctx, refs)
	if err != nil {
		return err
	}
	for i := range staged {
		v, ok := vals[refs[i]]
		if !ok {
			return fmt.Errorf("lineage: missing value %d in run %q", refs[i].ValID, refs[i].RunID)
		}
		staged[i].Value = v
		result.Add(staged[i])
	}
	return nil
}
