package lineage

import (
	"repro/internal/trace"
	"repro/internal/value"
)

// NaiveMem is an independent reference implementation of Def. 1 evaluated
// directly over an in-memory trace, with the same granularity semantics as
// the store-backed algorithms. It exists to cross-check NI and INDEXPROJ in
// property tests and to answer queries on traces that were never persisted.
type NaiveMem struct {
	runID string
	// xformsByOut indexes events by (proc, port) of each output binding.
	xformsByOut map[[2]string][]memXform
	xfersTo     map[[2]string][]trace.XferEvent
}

type memXform struct {
	event  trace.XformEvent
	outIdx value.Index // index of the particular output binding
}

// NewNaiveMem indexes a trace for repeated queries.
func NewNaiveMem(t *trace.Trace) *NaiveMem {
	m := &NaiveMem{
		runID:       t.RunID,
		xformsByOut: make(map[[2]string][]memXform),
		xfersTo:     make(map[[2]string][]trace.XferEvent),
	}
	for _, ev := range t.Xforms {
		for _, out := range ev.Outputs {
			k := [2]string{out.Proc, out.Port}
			m.xformsByOut[k] = append(m.xformsByOut[k], memXform{event: ev, outIdx: out.Index})
		}
	}
	for _, ev := range t.Xfers {
		k := [2]string{ev.To.Proc, ev.To.Port}
		m.xfersTo[k] = append(m.xfersTo[k], ev)
	}
	return m
}

// Lineage evaluates lin(⟨proc:port[idx]⟩, focus) on the indexed trace.
func (m *NaiveMem) Lineage(proc, port string, idx value.Index, focus Focus) (*Result, error) {
	result := NewResult()
	start := node{proc: proc, port: port, idx: idx.Clone()}
	visited := map[entryKey]bool{start.key(): true}
	stack := []node{start}

	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]

		push := func(next node) {
			k := next.key()
			if !visited[k] {
				visited[k] = true
				stack = append(stack, next)
			}
		}

		for _, ev := range m.matchXforms(cur) {
			collect := focus[ev.Proc]
			for _, in := range ev.Inputs {
				if collect {
					result.Add(Entry{RunID: m.runID, Proc: in.Proc, Port: in.Port, Index: in.Index, Ctx: in.Ctx, Value: in.Value})
				}
				push(node{proc: in.Proc, port: in.Port, idx: in.Index})
			}
		}
		for _, xf := range m.xfersTo[[2]string{cur.proc, cur.port}] {
			up, ok := translateAcrossXfer(cur.idx, xf.To.Index, xf.From.Index)
			if !ok {
				continue
			}
			push(node{proc: xf.From.Proc, port: xf.From.Port, idx: up})
		}
	}
	return result, nil
}

// matchXforms applies the granularity rules of §2.3: events whose output
// index extends the query index match directly; otherwise the events at the
// longest strictly-coarser prefix match.
func (m *NaiveMem) matchXforms(cur node) []trace.XformEvent {
	candidates := m.xformsByOut[[2]string{cur.proc, cur.port}]
	var out []trace.XformEvent
	for _, c := range candidates {
		if c.outIdx.HasPrefix(cur.idx) {
			out = append(out, c.event)
		}
	}
	if out != nil {
		return out
	}
	// Coarser fallback: longest proper prefix of the query with events.
	for n := len(cur.idx) - 1; n >= 0; n-- {
		want := cur.idx.Truncate(n)
		for _, c := range candidates {
			if c.outIdx.Equal(want) {
				out = append(out, c.event)
			}
		}
		if out != nil {
			return out
		}
	}
	return nil
}
