package lineage

import (
	"fmt"
	"testing"

	"repro/internal/engine"
	"repro/internal/store"
	"repro/internal/value"
	"repro/internal/workflow"
)

// Ablation: plan caching. All queries over traces of one workflow share the
// same compiled structure (§3); these benchmarks separate the cost of a
// cached-plan query from compile-every-time, quantifying the design choice
// DESIGN.md calls out.

func benchChain(b *testing.B, l, d int) (*store.Store, *workflow.Workflow, string) {
	b.Helper()
	w := workflow.New(fmt.Sprintf("chain%d", l))
	w.AddInput("in", 1)
	w.AddOutput("out", 1)
	prev, prevPort := "", "in"
	for i := 0; i < l; i++ {
		name := fmt.Sprintf("s%03d", i)
		w.AddProcessor(name, "id", []workflow.Port{workflow.In("x", 0)}, []workflow.Port{workflow.Out("y", 0)})
		w.Connect(prev, prevPort, name, "x")
		prev, prevPort = name, "y"
	}
	w.Connect(prev, prevPort, "", "out")
	reg := engine.NewRegistry()
	reg.Register("id", func(args []value.Value) ([]value.Value, error) {
		return []value.Value{args[0]}, nil
	})
	items := make([]string, d)
	for i := range items {
		items[i] = fmt.Sprintf("item%d", i)
	}
	_, tr, err := engine.New(reg).RunTrace(w, "r", map[string]value.Value{"in": value.Strs(items...)})
	if err != nil {
		b.Fatal(err)
	}
	s, err := store.OpenMemory()
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	if err := s.StoreTrace(tr); err != nil {
		b.Fatal(err)
	}
	return s, w, "r"
}

func BenchmarkIndexProjCachedPlan(b *testing.B) {
	s, w, run := benchChain(b, 50, 20)
	ip, err := NewIndexProj(s, w)
	if err != nil {
		b.Fatal(err)
	}
	focus := NewFocus("s000")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ip.Lineage(run, "s049", "y", value.Ix(7), focus); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIndexProjCompileEveryQuery(b *testing.B) {
	s, w, run := benchChain(b, 50, 20)
	focus := NewFocus("s000")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ip, err := NewIndexProj(s, w)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ip.Lineage(run, "s049", "y", value.Ix(7), focus); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNaiveChain(b *testing.B) {
	for _, l := range []int{10, 50, 100} {
		b.Run(fmt.Sprintf("l=%d", l), func(b *testing.B) {
			s, _, run := benchChain(b, l, 20)
			ni := NewNaive(s)
			focus := NewFocus("s000")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ni.Lineage(run, fmt.Sprintf("s%03d", l-1), "y", value.Ix(7), focus); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkNaiveMemChain(b *testing.B) {
	// The in-memory reference, for comparison with the store-backed NI: the
	// gap is the SQL round-trip cost NI pays per traversal hop.
	w := workflow.New("chain")
	w.AddInput("in", 1)
	w.AddOutput("out", 1)
	prev, prevPort := "", "in"
	const l = 50
	for i := 0; i < l; i++ {
		name := fmt.Sprintf("s%03d", i)
		w.AddProcessor(name, "id", []workflow.Port{workflow.In("x", 0)}, []workflow.Port{workflow.Out("y", 0)})
		w.Connect(prev, prevPort, name, "x")
		prev, prevPort = name, "y"
	}
	w.Connect(prev, prevPort, "", "out")
	reg := engine.NewRegistry()
	reg.Register("id", func(args []value.Value) ([]value.Value, error) {
		return []value.Value{args[0]}, nil
	})
	_, tr, err := engine.New(reg).RunTrace(w, "r", map[string]value.Value{"in": value.Strs("a", "b", "c")})
	if err != nil {
		b.Fatal(err)
	}
	mem := NewNaiveMem(tr)
	focus := NewFocus("s000")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mem.Lineage("s049", "y", value.Ix(1), focus); err != nil {
			b.Fatal(err)
		}
	}
}
