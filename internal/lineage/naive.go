package lineage

import (
	"fmt"
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/value"
)

// Naive is the NI baseline of §2.4/§4: it computes lin(⟨P:Y[p], v⟩, 𝒫) by
// an extensional traversal of the stored provenance graph, issuing one or
// more trace queries per visited node. Its cost therefore grows with the
// length of the provenance paths and, for multi-run queries, linearly with
// the number of runs.
type Naive struct {
	s store.TraceQuerier
}

// NewNaive returns an NI evaluator over a provenance store — a single
// *store.Store or any other TraceQuerier, such as a sharded store routing
// each run's traversal to its owning shard.
func NewNaive(s store.TraceQuerier) *Naive { return &Naive{s: s} }

// node is one traversal state: a binding identified by processor, port and
// full index.
type node struct {
	proc string
	port string
	idx  value.Index
}

func (n node) key() entryKey {
	return entryKey{proc: n.proc, port: n.port, idx: n.idx.String()}
}

// Lineage evaluates lin(⟨proc:port[idx]⟩, focus) within one run. proc may be
// trace.WorkflowProc ("") to start from a workflow output port.
func (n *Naive) Lineage(runID, proc, port string, idx value.Index, focus Focus) (*Result, error) {
	total := obs.Start(niQueryNs)
	result := NewResult()
	if err := n.lineageInto(result, runID, proc, port, idx, focus); err != nil {
		total.End()
		return nil, err
	}
	d := total.End()
	niQueries.Add(1)
	if obs.SlowExceeded(d) {
		obs.Slow("lineage.ni", d,
			"run", runID,
			"binding", proc+":"+port+idx.String(),
			"bindings", strconv.Itoa(result.Len()))
	}
	return result, nil
}

// LineageMultiRun evaluates the same query over a set of runs, unioning the
// per-run answers. NI has no shared work between runs: each run costs a full
// traversal (this is the behaviour Fig. 4 of the paper contrasts with
// INDEXPROJ).
func (n *Naive) LineageMultiRun(runIDs []string, proc, port string, idx value.Index, focus Focus) (*Result, error) {
	total := obs.Start(niQueryNs)
	runIDs = dedupRuns(runIDs)
	if _, _, err := validateRuns(n.s.HasRun, runIDs, false); err != nil {
		total.End()
		return nil, err
	}
	result := NewResult()
	for _, runID := range runIDs {
		if err := n.lineageInto(result, runID, proc, port, idx, focus); err != nil {
			total.End()
			return nil, err
		}
	}
	d := total.End()
	niQueries.Add(1)
	if obs.SlowExceeded(d) {
		obs.Slow("lineage.ni", d,
			"runs", strconv.Itoa(len(runIDs)),
			"binding", proc+":"+port+idx.String(),
			"bindings", strconv.Itoa(result.Len()))
	}
	return result, nil
}

func (n *Naive) lineageInto(result *Result, runID, proc, port string, idx value.Index, focus Focus) error {
	start := node{proc: proc, port: port, idx: idx.Clone()}
	visited := map[entryKey]bool{start.key(): true}
	stack := []node{start}

	// NI's cost splits into graph traversal (the store queries walking the
	// extensional provenance graph) and value materialization — its analogue
	// of INDEXPROJ's probe phase. The materialization time is accumulated in
	// probeNs by addEntry and subtracted from the loop's wall time, so
	// traverse_ns + probe_ns never exceeds the whole traversal.
	var probeNs int64
	var nodes int64
	var t0 time.Time
	if obs.Enabled() {
		t0 = time.Now()
	}

	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nodes++

		push := func(next node) {
			k := next.key()
			if !visited[k] {
				visited[k] = true
				stack = append(stack, next)
			}
		}

		// Case 1 of Def. 1: the binding is an output of some xform events.
		// The store applies the granularity rules (exact-or-finer first,
		// else the longest coarser prefix).
		events, err := n.s.XformsByOutput(runID, cur.proc, cur.port, cur.idx)
		if err != nil {
			return err
		}
		for _, ev := range events {
			collect := focus[ev.Proc]
			for _, in := range ev.Inputs {
				if collect {
					if err := n.addEntry(result, in, &probeNs); err != nil {
						return err
					}
				}
				push(node{proc: in.Proc, port: in.Port, idx: in.Index})
			}
		}

		// Case 2 of Def. 1: the binding was transferred along arcs; follow
		// each overlapping xfer upstream, translating the index.
		xfers, err := n.s.XfersTo(runID, cur.proc, cur.port)
		if err != nil {
			return err
		}
		for _, xf := range xfers {
			up, ok := translateAcrossXfer(cur.idx, xf.To.Index, xf.From.Index)
			if !ok {
				continue
			}
			push(node{proc: xf.From.Proc, port: xf.From.Port, idx: up})
		}
	}
	if obs.Enabled() {
		loopNs := time.Since(t0).Nanoseconds()
		if probeNs > loopNs {
			probeNs = loopNs // clock skew guard; keeps the split a partition
		}
		niProbeNs.Observe(probeNs)
		niTraverseNs.Observe(loopNs - probeNs)
		niNodes.Add(nodes)
	}
	return nil
}

// translateAcrossXfer maps a query index at the sink of an xfer event to the
// corresponding index at its source. Ordinary xfers record the whole-value
// transfer (To.Index == From.Index == the run context), so indices propagate
// verbatim; nested-dataflow boundary xfers remap a parent element index to a
// sub-run context, and the residual carries across. An event whose sink
// index does not overlap the query index (a different activation) does not
// match.
func translateAcrossXfer(queryIdx, toIdx, fromIdx value.Index) (value.Index, bool) {
	switch {
	case queryIdx.HasPrefix(toIdx):
		residual := queryIdx.Slice(len(toIdx), len(queryIdx))
		return fromIdx.Concat(residual), true
	case toIdx.HasPrefix(queryIdx):
		// The event is finer than the query: take its whole source index.
		return fromIdx.Clone(), true
	default:
		return nil, false
	}
}

func (n *Naive) addEntry(result *Result, b store.Binding, probeNs *int64) error {
	var t0 time.Time
	timed := obs.Enabled()
	if timed {
		t0 = time.Now()
	}
	v, err := n.s.Value(b.RunID, b.ValID)
	if timed {
		*probeNs += time.Since(t0).Nanoseconds()
	}
	if err != nil {
		return fmt.Errorf("lineage: %w", err)
	}
	result.Add(Entry{RunID: b.RunID, Proc: b.Proc, Port: b.Port, Index: b.Index, Ctx: b.Ctx, Value: v})
	return nil
}
