package lineage

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/workflow"
)

// View implements the combination the paper's conclusion proposes: layering
// Zoom*UserViews-style abstractions [Biton et al., VLDB'07] on top of the
// lineage algorithms. A view partitions (a subset of) a workflow's
// processors into named groups; each group behaves like a virtual composite
// processor, and a group-focused lineage query returns the bindings entering
// the group from outside — its "virtual input ports" — labelled with the
// group name instead of the member internals.
//
// The view layer is pure post-processing over either algorithm: the focus
// set is expanded to the member processors, and the answer is filtered to
// the group's external input ports. It therefore inherits INDEXPROJ's
// efficiency unchanged.
type View struct {
	Name   string
	groups map[string][]string
	byProc map[string]string
}

// NewView returns an empty view definition.
func NewView(name string) *View {
	return &View{Name: name, groups: make(map[string][]string), byProc: make(map[string]string)}
}

// AddGroup adds a named group of processors. Groups must be disjoint.
func (v *View) AddGroup(group string, procs ...string) error {
	if group == "" {
		return fmt.Errorf("lineage: view group with empty name")
	}
	if _, ok := v.groups[group]; ok {
		return fmt.Errorf("lineage: view group %q already defined", group)
	}
	if len(procs) == 0 {
		return fmt.Errorf("lineage: view group %q has no members", group)
	}
	for _, p := range procs {
		if prev, ok := v.byProc[p]; ok {
			return fmt.Errorf("lineage: processor %q already in group %q", p, prev)
		}
	}
	v.groups[group] = append([]string(nil), procs...)
	for _, p := range procs {
		v.byProc[p] = group
	}
	return nil
}

// Groups returns the group names, sorted.
func (v *View) Groups() []string {
	out := make([]string, 0, len(v.groups))
	for g := range v.groups {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}

// GroupOf returns the group containing a processor, if any.
func (v *View) GroupOf(proc string) (string, bool) {
	g, ok := v.byProc[proc]
	return g, ok
}

// Validate checks the view against a workflow: every member processor must
// exist (path-qualified names address processors inside nested dataflows).
func (v *View) Validate(wf *workflow.Workflow) error {
	for group, procs := range v.groups {
		for _, p := range procs {
			if !processorExists(wf, p) {
				return fmt.Errorf("lineage: view group %q references unknown processor %q", group, p)
			}
		}
	}
	return nil
}

func processorExists(wf *workflow.Workflow, path string) bool {
	segments := strings.Split(path, "/")
	cur := wf
	for len(segments) > 1 {
		p := cur.Processor(segments[0])
		if p == nil || p.Sub == nil {
			return false
		}
		cur = p.Sub
		segments = segments[1:]
	}
	return cur.Processor(segments[0]) != nil
}

// ExternalInputs computes, per group, the input ports of member processors
// whose producing arc originates outside the group (including workflow
// inputs and defaults) — the group's virtual input ports.
func (v *View) ExternalInputs(wf *workflow.Workflow) map[string]map[workflow.PortID]bool {
	out := make(map[string]map[workflow.PortID]bool, len(v.groups))
	for group := range v.groups {
		out[group] = make(map[workflow.PortID]bool)
	}
	v.collectExternal(wf, "", out)
	return out
}

func (v *View) collectExternal(wf *workflow.Workflow, base string, out map[string]map[workflow.PortID]bool) {
	for _, p := range wf.Processors {
		qualified := p.Name
		if base != "" {
			qualified = base + "/" + p.Name
		}
		if p.Sub != nil {
			v.collectExternal(p.Sub, qualified, out)
		}
		group, ok := v.byProc[qualified]
		if !ok {
			continue
		}
		for _, port := range p.Inputs {
			id := workflow.PortID{Proc: p.Name, Port: port.Name}
			arc, connected := wf.IncomingArc(id)
			external := true
			if connected && arc.From.Proc != workflow.WorkflowPseudoProc {
				srcQualified := arc.From.Proc
				if base != "" {
					srcQualified = base + "/" + arc.From.Proc
				}
				if srcGroup, ok := v.byProc[srcQualified]; ok && srcGroup == group {
					external = false
				}
			}
			if external {
				out[group][workflow.PortID{Proc: qualified, Port: port.Name}] = true
			}
		}
	}
}

// ViewEntry is a lineage entry lifted to the view level: the binding enters
// the named group from outside.
type ViewEntry struct {
	Group string
	Entry
}

func (e ViewEntry) String() string { return e.Group + "::" + e.Entry.String() }

// ViewResult is a view-level lineage answer.
type ViewResult struct {
	Entries []ViewEntry
}

func (r *ViewResult) String() string {
	parts := make([]string, len(r.Entries))
	for i, e := range r.Entries {
		parts[i] = e.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// FocusFor expands a set of group names into the processor-level focus set
// the underlying algorithms consume.
func (v *View) FocusFor(groups ...string) (Focus, error) {
	f := NewFocus()
	for _, g := range groups {
		procs, ok := v.groups[g]
		if !ok {
			return nil, fmt.Errorf("lineage: view has no group %q", g)
		}
		for _, p := range procs {
			f[p] = true
		}
	}
	return f, nil
}

// Lift filters a processor-level result to each group's external input ports
// and labels the survivors with their group, producing the view-level
// answer. Entries at ports internal to a group are abstraction details and
// are dropped, exactly as a Zoom user view hides them.
func (v *View) Lift(wf *workflow.Workflow, res *Result) *ViewResult {
	external := v.ExternalInputs(wf)
	out := &ViewResult{}
	for _, e := range res.Entries() {
		group, ok := v.byProc[e.Proc]
		if !ok {
			continue
		}
		if external[group][workflow.PortID{Proc: e.Proc, Port: e.Port}] {
			out.Entries = append(out.Entries, ViewEntry{Group: group, Entry: e})
		}
	}
	return out
}

// LineageThroughView answers a group-focused lineage query end to end: the
// group names are expanded to a processor focus, the query runs through the
// given evaluator function, and the answer is lifted to the view level.
func (v *View) LineageThroughView(wf *workflow.Workflow,
	eval func(focus Focus) (*Result, error), groups ...string) (*ViewResult, error) {
	focus, err := v.FocusFor(groups...)
	if err != nil {
		return nil, err
	}
	res, err := eval(focus)
	if err != nil {
		return nil, err
	}
	return v.Lift(wf, res), nil
}
