package lineage

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/value"
)

// This file holds the multi-run executor edge-case regressions: duplicate
// run IDs must not inflate probes or results, chunkRuns must never loop on a
// bad size, and unknown runs must surface store.ErrUnknownRun instead of an
// empty answer.

func TestChunkRunsClampsSize(t *testing.T) {
	runs := []string{"a", "b", "c"}
	for _, size := range []int{0, -1, -100} {
		chunks := chunkRuns(runs, size) // must terminate, not spin
		if len(chunks) != len(runs) {
			t.Fatalf("chunkRuns(%v, %d) = %v chunks, want %d singletons", runs, size, len(chunks), len(runs))
		}
		for i, c := range chunks {
			if len(c) != 1 || c[0] != runs[i] {
				t.Fatalf("chunkRuns(%v, %d)[%d] = %v, want [%q]", runs, size, i, c, runs[i])
			}
		}
	}
	if got := chunkRuns(runs, 2); len(got) != 2 || len(got[0]) != 2 || len(got[1]) != 1 {
		t.Fatalf("chunkRuns(%v, 2) = %v", runs, got)
	}
	if got := chunkRuns(nil, 0); got != nil {
		t.Fatalf("chunkRuns(nil, 0) = %v, want nil", got)
	}
}

func TestDedupRuns(t *testing.T) {
	unique := []string{"a", "b", "c"}
	if got := dedupRuns(unique); len(got) != 3 || &got[0] != &unique[0] {
		t.Fatalf("dedupRuns on a duplicate-free slice must return it unchanged, got %v", got)
	}
	got := dedupRuns([]string{"a", "b", "a", "c", "b", "a"})
	if !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("dedupRuns = %v, want [a b c] (first-seen order)", got)
	}
	if got := dedupRuns(nil); len(got) != 0 {
		t.Fatalf("dedupRuns(nil) = %v", got)
	}
}

// testbedStore builds a small populated store plus its evaluator.
func testbedStore(t *testing.T, l, d, runs int) (*store.Store, *IndexProj, []string) {
	t.Helper()
	reg := engine.NewRegistry()
	gen.RegisterTestbed(reg)
	eng := engine.New(reg)
	wf := gen.Testbed(l)
	s, err := store.OpenMemory()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	runIDs := make([]string, runs)
	for r := 0; r < runs; r++ {
		runIDs[r] = fmt.Sprintf("run%03d", r)
		_, tr, err := eng.RunTrace(wf, runIDs[r], gen.TestbedInputs(d))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.StoreTrace(tr); err != nil {
			t.Fatal(err)
		}
	}
	ip, err := NewIndexProj(s, wf)
	if err != nil {
		t.Fatal(err)
	}
	return s, ip, runIDs
}

// TestExecuteMultiRunDedupsRuns is the duplicate-runID regression: passing
// the same run several times must cost exactly the probes of passing it
// once, and return the identical result.
func TestExecuteMultiRunDedupsRuns(t *testing.T) {
	_, ip, runIDs := testbedStore(t, 4, 3, 3)
	plan, err := ip.Compile(gen.FinalName, "product", value.Ix(1, 1), NewFocus(gen.ListGenName))
	if err != nil {
		t.Fatal(err)
	}
	dups := append(append(append([]string{}, runIDs...), runIDs...), runIDs[0], runIDs[0])

	for _, opt := range []MultiRunOptions{
		{Parallelism: 1},
		{Parallelism: 1, BatchSize: 1},
		{Parallelism: 4, BatchSize: 2},
	} {
		s0 := obs.Default.Snapshot()
		want, err := ip.ExecuteMultiRun(context.Background(), plan, runIDs, opt)
		if err != nil {
			t.Fatal(err)
		}
		dClean := obs.Default.Snapshot().Sub(s0)

		s0 = obs.Default.Snapshot()
		got, err := ip.ExecuteMultiRun(context.Background(), plan, dups, opt)
		if err != nil {
			t.Fatal(err)
		}
		dDup := obs.Default.Snapshot().Sub(s0)

		if !got.Equal(want) {
			t.Fatalf("opt %+v: duplicated runIDs changed the result:\n got %v\nwant %v", opt, got, want)
		}
		for _, ctr := range []string{"store.probes", "store.probe_batches", "lineage.multirun.tasks"} {
			if dDup.Counter(ctr) != dClean.Counter(ctr) {
				t.Fatalf("opt %+v: %s grew with duplicate runIDs: %d (dups) vs %d (clean)",
					opt, ctr, dDup.Counter(ctr), dClean.Counter(ctr))
			}
		}
	}
}

// TestMultiRunUnknownRunSurfacesSentinel: a nonexistent run in any multi-run
// entry point must yield store.ErrUnknownRun, not a silent empty result.
func TestMultiRunUnknownRunSurfacesSentinel(t *testing.T) {
	s, ip, runIDs := testbedStore(t, 3, 2, 2)
	focus := NewFocus(gen.ListGenName)
	bad := append(append([]string{}, runIDs...), "no-such-run")

	if _, err := ip.LineageMultiRun(bad, gen.FinalName, "product", value.Ix(0, 0), focus); !errors.Is(err, store.ErrUnknownRun) {
		t.Fatalf("sequential INDEXPROJ: got %v, want ErrUnknownRun", err)
	}
	for _, p := range []int{1, 4} {
		_, err := ip.LineageMultiRunParallel(context.Background(), bad, gen.FinalName, "product",
			value.Ix(0, 0), focus, MultiRunOptions{Parallelism: p})
		if !errors.Is(err, store.ErrUnknownRun) {
			t.Fatalf("parallel P=%d: got %v, want ErrUnknownRun", p, err)
		}
	}
	ni := NewNaive(s)
	if _, err := ni.LineageMultiRun(bad, gen.FinalName, "product", value.Ix(0, 0), focus); !errors.Is(err, store.ErrUnknownRun) {
		t.Fatalf("NI multi-run: got %v, want ErrUnknownRun", err)
	}

	// Known runs keep working (validation must not reject valid queries).
	if _, err := ip.LineageMultiRun(runIDs, gen.FinalName, "product", value.Ix(0, 0), focus); err != nil {
		t.Fatalf("valid multi-run rejected: %v", err)
	}
}
