package lineage

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/value"
)

// This file holds the differential property test of the observability PR:
// on randomized workflows and multi-run traces, the sequential NI and
// INDEXPROJ executors and the parallel multi-run executor must return
// identical lineage sets, and the obs counters recorded along the way must
// satisfy their structural invariants. Run under -race it also exercises
// the concurrency of the metric hot paths.

// diffTrials returns the trial count, overridable via DIFF_TRIALS for the
// nightly CI job which runs a much larger seed sweep.
func diffTrials(def int) int {
	if s := os.Getenv("DIFF_TRIALS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return def
}

func TestDifferentialExecutorsAndCounters(t *testing.T) {
	if testing.Short() {
		t.Skip("long randomized differential test")
	}
	trials := diffTrials(25)
	rng := rand.New(rand.NewSource(20260806))
	reg := propertyRegistry()

	for trial := 0; trial < trials; trial++ {
		w := buildRandomWorkflow(rng, fmt.Sprintf("dw%d", trial), 3+rng.Intn(6), true)
		if err := w.Validate(); err != nil {
			t.Fatalf("trial %d: invalid workflow: %v", trial, err)
		}
		s, err := store.OpenMemory()
		if err != nil {
			t.Fatal(err)
		}
		// Every run executes on the same input values: NI answers
		// extensionally per run, so the strict three-way equality needs
		// every run to contain the queried index — i.e. identical input
		// shapes. (Shape-divergent runs are where INDEXPROJ deliberately
		// over-approximates; see TestEmptyCollectionsSubset.)
		inputs := map[string]value.Value{}
		for _, in := range w.Inputs {
			inputs[in.Name] = randomInput(rng, in.DeclaredDepth, in.Name, false)
		}
		nRuns := 2 + rng.Intn(3)
		runIDs := make([]string, nRuns)
		for r := 0; r < nRuns; r++ {
			runIDs[r] = fmt.Sprintf("run%d", r)
			_, tr, err := engine.New(reg).RunTrace(w, runIDs[r], inputs)
			if err != nil {
				t.Fatalf("trial %d run %d: engine: %v", trial, r, err)
			}
			if err := s.StoreTrace(tr); err != nil {
				t.Fatal(err)
			}
		}

		ni := NewNaive(s)
		ip, err := NewIndexProj(s, w)
		if err != nil {
			t.Fatal(err)
		}
		// Query the first workflow output at a random recorded granularity.
		tr0, err := s.LoadTrace(runIDs[0])
		if err != nil {
			t.Fatal(err)
		}
		type q struct {
			proc, port string
			idx        value.Index
		}
		var queries []q
		for _, ev := range tr0.Xforms {
			for _, out := range ev.Outputs {
				queries = append(queries, q{out.Proc, out.Port, out.Index})
			}
		}
		if len(queries) == 0 {
			s.Close()
			continue
		}
		procSet := map[string]bool{}
		for _, ev := range tr0.Xforms {
			procSet[ev.Proc] = true
		}
		var procs []string
		for p := range procSet {
			procs = append(procs, p)
		}

		for probe := 0; probe < 4; probe++ {
			query := queries[rng.Intn(len(queries))]
			focus := NewFocus()
			for _, p := range procs {
				if rng.Intn(3) == 0 {
					focus[p] = true
				}
			}

			s0 := obs.Default.Snapshot()
			a, err := ni.LineageMultiRun(runIDs, query.proc, query.port, query.idx, focus)
			if err != nil {
				t.Fatalf("trial %d: NI multi-run: %v", trial, err)
			}
			b, err := ip.LineageMultiRun(runIDs, query.proc, query.port, query.idx, focus)
			if err != nil {
				t.Fatalf("trial %d: INDEXPROJ multi-run: %v\nquery %s:%s%v focus %v\nworkflow: %s",
					trial, err, query.proc, query.port, query.idx, focus.Names(), mustJSON(w))
			}
			opt := MultiRunOptions{
				Parallelism: 1 + rng.Intn(4),
				BatchSize:   rng.Intn(3), // 0 = default, 1 = per-run, 2 = pairs
			}
			c, err := ip.LineageMultiRunParallel(context.Background(), runIDs, query.proc, query.port, query.idx, focus, opt)
			if err != nil {
				t.Fatalf("trial %d: parallel multi-run: %v", trial, err)
			}
			if !a.Equal(b) {
				t.Fatalf("trial %d: NI %v != INDEXPROJ %v\nquery %s:%s%v focus %v\nworkflow: %s",
					trial, a, b, query.proc, query.port, query.idx, focus.Names(), mustJSON(w))
			}
			if !a.Equal(c) {
				t.Fatalf("trial %d: NI %v != parallel(%+v) %v\nquery %s:%s%v focus %v\nworkflow: %s",
					trial, a, c, opt, query.proc, query.port, query.idx, focus.Names(), mustJSON(w))
			}

			// Counter invariants over the three queries just issued.
			d := obs.Default.Snapshot().Sub(s0)
			probes := d.Counter("store.probes")
			batches := d.Counter("store.probe_batches")
			if probes < batches {
				t.Fatalf("trial %d: store.probes (%d) < store.probe_batches (%d): every batch must issue at least one probe",
					trial, probes, batches)
			}
			if got := d.Counter("lineage.indexproj.queries"); got < 2 {
				t.Fatalf("trial %d: expected >=2 indexproj query completions, counters saw %d", trial, got)
			}
			if got := d.Counter("lineage.ni.queries"); got < 1 {
				t.Fatalf("trial %d: expected >=1 NI query completion, counters saw %d", trial, got)
			}
		}
		s.Close()
	}

	// Span balance: after all queries completed, every span that started
	// must have ended — holds globally regardless of parallelism.
	if started, ended := obs.SpansStarted(), obs.SpansEnded(); started != ended {
		t.Fatalf("span imbalance after differential trials: started=%d ended=%d", started, ended)
	}
}

// TestObsStageTimingInvariant checks t1 + t2 <= total on the sequential
// INDEXPROJ path: plan compilation and probe execution happen inside the
// query span, so their recorded durations cannot exceed the query's. (The
// parallel executor is excluded — its probe spans overlap in wall time.)
func TestObsStageTimingInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	reg := propertyRegistry()
	w := buildRandomWorkflow(rng, "stw", 6, false)
	inputs := map[string]value.Value{}
	for _, in := range w.Inputs {
		inputs[in.Name] = randomInput(rng, in.DeclaredDepth, in.Name, false)
	}
	_, tr, err := engine.New(reg).RunTrace(w, "run", inputs)
	if err != nil {
		t.Fatal(err)
	}
	s, err := store.OpenMemory()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.StoreTrace(tr); err != nil {
		t.Fatal(err)
	}
	ip, err := NewIndexProj(s, w)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Xforms) == 0 {
		t.Skip("trace recorded no transformations")
	}
	out := tr.Xforms[0].Outputs[0]

	s0 := obs.Default.Snapshot()
	for i := 0; i < 20; i++ {
		if _, err := ip.Lineage("run", out.Proc, out.Port, out.Index, NewFocus()); err != nil {
			t.Fatal(err)
		}
	}
	d := obs.Default.Snapshot().Sub(s0)
	t1 := d.HistSum("lineage.indexproj.plan_ns")
	t2 := d.HistSum("lineage.indexproj.probe_ns")
	total := d.HistSum("lineage.indexproj.query_ns")
	if t1+t2 > total {
		t.Fatalf("stage times exceed total on sequential path: t1=%dns + t2=%dns > total=%dns", t1, t2, total)
	}
	if total == 0 {
		t.Fatal("query_ns recorded nothing across 20 queries")
	}
}
