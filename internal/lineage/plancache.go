package lineage

import (
	"container/list"
	"sync"
	"sync/atomic"

	"repro/internal/store"
	"repro/internal/value"
)

// This file lifts IndexProj's per-evaluator plan cache behind an injectable,
// concurrency-safe interface so a long-running server can share one compiled-
// plan cache across requests, evaluators, and tenants. Compiled plans are
// pure functions of (workflow specification, query binding, focus) — but the
// cache key must carry more than that:
//
//   - a scope (the tenant namespace in provd), so one tenant's plans are
//     never served under another tenant's key space, and
//   - the store's topology generation (the shard-manifest parameters for a
//     sharded store), so an evaluator attached to a store that was reopened
//     with a different ring never answers from plans cached under the old
//     topology. The probes themselves are spec-level and would survive a
//     reshard, but executor-facing plan state must not outlive the store
//     layout it was compiled against — keying on the generation makes the
//     stale-reuse class of bug structurally impossible.

// PlanCache is the compiled-plan cache surface IndexProj compiles through.
// Implementations must be safe for concurrent use. Get returns the cached
// plan for a key; Add inserts a freshly compiled plan and returns the winner
// (the existing plan if another goroutine raced the same compilation in
// first — callers must use the returned plan, not their argument).
type PlanCache interface {
	Get(key string) (*CompiledPlan, bool)
	Add(key string, plan *CompiledPlan) *CompiledPlan
}

// mapPlanCache is the private per-evaluator cache: the original read-mostly
// RWMutex map, unbounded (one evaluator sees one workflow's query space).
type mapPlanCache struct {
	mu    sync.RWMutex
	plans map[string]*CompiledPlan
}

func newMapPlanCache() *mapPlanCache {
	return &mapPlanCache{plans: make(map[string]*CompiledPlan)}
}

func (c *mapPlanCache) Get(key string) (*CompiledPlan, bool) {
	c.mu.RLock()
	p, ok := c.plans[key]
	c.mu.RUnlock()
	return p, ok
}

func (c *mapPlanCache) Add(key string, plan *CompiledPlan) *CompiledPlan {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cached, ok := c.plans[key]; ok {
		return cached // another goroutine won the compilation race
	}
	c.plans[key] = plan
	return plan
}

func (c *mapPlanCache) len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.plans)
}

// SharedPlanCache is a bounded, concurrency-safe, LRU-evicting plan cache
// meant to be shared across evaluators and requests (provd holds exactly
// one). Hits promote; inserts beyond the capacity evict the least recently
// used entry. Hit/miss/eviction totals are exposed both as obs counters
// (lineage.plancache.*) and as per-instance accessors for tests.
type SharedPlanCache struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*list.Element
	order    *list.List // front = most recently used

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type planEntry struct {
	key  string
	plan *CompiledPlan
}

// DefaultPlanCacheSize bounds a SharedPlanCache built with capacity <= 0.
const DefaultPlanCacheSize = 1024

// NewSharedPlanCache returns an empty shared cache holding at most capacity
// plans (DefaultPlanCacheSize when capacity <= 0).
func NewSharedPlanCache(capacity int) *SharedPlanCache {
	if capacity <= 0 {
		capacity = DefaultPlanCacheSize
	}
	return &SharedPlanCache{
		capacity: capacity,
		entries:  make(map[string]*list.Element),
		order:    list.New(),
	}
}

// Get returns the plan cached under key, promoting it to most recently used.
func (c *SharedPlanCache) Get(key string) (*CompiledPlan, bool) {
	c.mu.Lock()
	el, ok := c.entries[key]
	if ok {
		c.order.MoveToFront(el)
	}
	c.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		pcMisses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	pcHits.Add(1)
	return el.Value.(*planEntry).plan, true
}

// Add inserts a plan under key and returns the winning plan (the cached one
// when a racing goroutine inserted first). Inserting over a full cache
// evicts the least recently used entry.
func (c *SharedPlanCache) Add(key string, plan *CompiledPlan) *CompiledPlan {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		return el.Value.(*planEntry).plan
	}
	c.entries[key] = c.order.PushFront(&planEntry{key: key, plan: plan})
	for len(c.entries) > c.capacity {
		oldest := c.order.Back()
		if oldest == nil {
			break
		}
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*planEntry).key)
		c.evictions.Add(1)
		pcEvictions.Add(1)
	}
	return plan
}

// Len returns the number of cached plans.
func (c *SharedPlanCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Capacity returns the maximum number of cached plans.
func (c *SharedPlanCache) Capacity() int { return c.capacity }

// Hits returns the cumulative Get hits.
func (c *SharedPlanCache) Hits() int64 { return c.hits.Load() }

// Misses returns the cumulative Get misses.
func (c *SharedPlanCache) Misses() int64 { return c.misses.Load() }

// Evictions returns the cumulative LRU evictions.
func (c *SharedPlanCache) Evictions() int64 { return c.evictions.Load() }

// topologyGen fingerprints the store layout a compiled plan is cached
// against. Stores that partition data (shard.ShardedStore) implement
// store.TopologyVersioner and report their manifest-pinned ring parameters;
// everything else — including a nil querier, compile-only evaluators — is
// one undivided keyspace.
func topologyGen(q store.LineageQuerier) string {
	if tv, ok := q.(store.TopologyVersioner); ok {
		return tv.TopologyGen()
	}
	return "single"
}

// planKey builds the full cache key of one compilation: the evaluator's
// scope (tenant namespace; "" for private evaluators), the workflow name,
// the store topology generation, and the query binding + focus. Components
// are joined with \x01, which cannot appear in any of them.
func planKey(scope, wfName, topoGen, proc, port string, idx value.Index, focus Focus) string {
	return scope + "\x01" + wfName + "\x01" + topoGen + "\x01" +
		proc + "\x01" + port + "\x01" + idx.String() + "\x01" + focus.Key()
}
