package lineage

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/value"
)

// This file tests the parallel multi-run executor: its results must be
// indistinguishable from the sequential per-run execution for every
// parallelism level and batch size (DESIGN.md §3b, property 6), and the
// executor must be free of data races when queries overlap on a shared
// IndexProj and store.

// multiRunEnv builds a random workflow, executes it several times with
// distinct inputs, and returns the evaluator plus the run IDs.
type multiRunEnv struct {
	s      *store.Store
	ip     *IndexProj
	runs   []string
	qs     []multiRunQuery
	focus  []string
	closed bool
}

type multiRunQuery struct {
	proc, port string
	idx        value.Index
}

func buildMultiRunEnv(t *testing.T, rng *rand.Rand, trial, nRuns int) *multiRunEnv {
	t.Helper()
	reg := propertyRegistry()
	w := buildRandomWorkflow(rng, fmt.Sprintf("par%d", trial), 3+rng.Intn(8), true)
	if err := w.Validate(); err != nil {
		t.Fatalf("trial %d: generated invalid workflow: %v", trial, err)
	}
	s, err := store.OpenMemory()
	if err != nil {
		t.Fatal(err)
	}
	env := &multiRunEnv{s: s}
	qSeen := map[string]bool{}
	procSet := map[string]bool{}
	for r := 0; r < nRuns; r++ {
		runID := fmt.Sprintf("run%d", r)
		inputs := map[string]value.Value{}
		for _, in := range w.Inputs {
			inputs[in.Name] = randomInput(rng, in.DeclaredDepth, fmt.Sprintf("r%d.%s", r, in.Name), false)
		}
		_, tr, err := engine.New(reg).RunTrace(w, runID, inputs)
		if err != nil {
			t.Fatalf("trial %d: engine: %v", trial, err)
		}
		if err := s.StoreTrace(tr); err != nil {
			t.Fatal(err)
		}
		env.runs = append(env.runs, runID)
		// Query bindings recorded in any run are fair game for all runs: runs
		// have different inputs, so indices present in one run may be absent
		// or coarser in another — exactly what the batched granularity
		// fallback must handle per run.
		for _, ev := range tr.Xforms {
			procSet[ev.Proc] = true
			for _, out := range ev.Outputs {
				key := out.Proc + ":" + out.Port + out.Index.String()
				if !qSeen[key] {
					qSeen[key] = true
					env.qs = append(env.qs, multiRunQuery{out.Proc, out.Port, out.Index})
				}
			}
		}
		for _, ev := range tr.Xfers {
			if ev.To.Proc == trace.WorkflowProc {
				key := ev.To.Proc + ":" + ev.To.Port + ev.To.Index.String()
				if !qSeen[key] {
					qSeen[key] = true
					env.qs = append(env.qs, multiRunQuery{ev.To.Proc, ev.To.Port, ev.To.Index})
				}
			}
		}
	}
	for p := range procSet {
		env.focus = append(env.focus, p)
	}
	ip, err := NewIndexProj(s, w)
	if err != nil {
		t.Fatal(err)
	}
	env.ip = ip
	return env
}

func (e *multiRunEnv) Close() {
	if !e.closed {
		e.closed = true
		e.s.Close()
	}
}

// TestParallelEquivalenceRandom is the parallel-execution invariance
// property: for random workflows, run sets, queries and focus sets, the
// parallel executor returns exactly the sequential multi-run answer at every
// parallelism level and batch size.
func TestParallelEquivalenceRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("long randomized property test")
	}
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 25; trial++ {
		env := buildMultiRunEnv(t, rng, trial, 2+rng.Intn(5))
		if len(env.qs) == 0 {
			env.Close()
			continue
		}
		for probe := 0; probe < 4; probe++ {
			q := env.qs[rng.Intn(len(env.qs))]
			focus := NewFocus()
			for _, p := range env.focus {
				if rng.Intn(3) == 0 {
					focus[p] = true
				}
			}
			// Sometimes query a subset of the runs, in shuffled order.
			runs := append([]string(nil), env.runs...)
			rng.Shuffle(len(runs), func(i, j int) { runs[i], runs[j] = runs[j], runs[i] })
			runs = runs[:1+rng.Intn(len(runs))]

			want, err := env.ip.LineageMultiRun(runs, q.proc, q.port, q.idx, focus)
			if err != nil {
				t.Fatalf("trial %d: sequential: %v", trial, err)
			}
			for _, par := range []int{1, 2, 4} {
				for _, batch := range []int{1, 2, 5} {
					opt := MultiRunOptions{Parallelism: par, BatchSize: batch}
					got, err := env.ip.LineageMultiRunParallel(context.Background(), runs, q.proc, q.port, q.idx, focus, opt)
					if err != nil {
						t.Fatalf("trial %d (P=%d batch=%d): %v", trial, par, batch, err)
					}
					if !got.Equal(want) {
						t.Fatalf("trial %d (P=%d batch=%d): parallel %v != sequential %v\nquery %s:%s%v focus %v",
							trial, par, batch, got, want, q.proc, q.port, q.idx, focus.Names())
					}
				}
			}
			// Default options (largest batch) too.
			got, err := env.ip.LineageMultiRunParallel(context.Background(), runs, q.proc, q.port, q.idx, focus, MultiRunOptions{Parallelism: 4})
			if err != nil {
				t.Fatalf("trial %d (defaults): %v", trial, err)
			}
			if !got.Equal(want) {
				t.Fatalf("trial %d (defaults): parallel %v != sequential %v", trial, got, want)
			}
		}
		env.Close()
	}
}

// TestParallelExecutorConcurrent issues overlapping multi-run and single-run
// queries from many goroutines against one shared IndexProj and store. Under
// -race this fails if the plan cache, the batched store read path, or the
// executor's result merging race.
func TestParallelExecutorConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	env := buildMultiRunEnv(t, rng, 0, 4)
	defer env.Close()
	if len(env.qs) == 0 {
		t.Skip("random workflow produced no queries")
	}

	// Precompute per-query expected answers sequentially.
	type job struct {
		q     multiRunQuery
		focus Focus
		want  *Result
	}
	jobs := make([]job, 0, 6)
	for i := 0; i < 6 && i < len(env.qs); i++ {
		q := env.qs[i]
		focus := NewFocus()
		for j, p := range env.focus {
			if (i+j)%2 == 0 {
				focus[p] = true
			}
		}
		want, err := env.ip.LineageMultiRun(env.runs, q.proc, q.port, q.idx, focus)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, job{q: q, focus: focus, want: want})
	}

	const goroutines = 8
	const iters = 20
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				j := jobs[(g+i)%len(jobs)]
				if i%3 == 0 {
					// Single-run queries exercise the shared plan cache.
					run := env.runs[(g+i)%len(env.runs)]
					if _, err := env.ip.Lineage(run, j.q.proc, j.q.port, j.q.idx, j.focus); err != nil {
						errCh <- err
						return
					}
					continue
				}
				opt := MultiRunOptions{Parallelism: 1 + (g+i)%4, BatchSize: 1 + (g+i)%3}
				got, err := env.ip.LineageMultiRunParallel(context.Background(), env.runs, j.q.proc, j.q.port, j.q.idx, j.focus, opt)
				if err != nil {
					errCh <- err
					return
				}
				if !got.Equal(j.want) {
					errCh <- fmt.Errorf("goroutine %d iter %d: concurrent result diverged", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestPlanCacheConcurrentCompile hammers Compile with distinct and identical
// keys from many goroutines: the read-mostly cache must neither race nor
// grow beyond one entry per distinct key.
func TestPlanCacheConcurrentCompile(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	env := buildMultiRunEnv(t, rng, 1, 1)
	defer env.Close()
	if len(env.qs) == 0 {
		t.Skip("random workflow produced no queries")
	}
	var wg sync.WaitGroup
	start := make(chan struct{})
	plans := make([][]*CompiledPlan, 8)
	for g := range plans {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < 50; i++ {
				q := env.qs[i%len(env.qs)]
				plan, err := env.ip.Compile(q.proc, q.port, q.idx, NewFocus(env.focus...))
				if err != nil {
					t.Error(err)
					return
				}
				plans[g] = append(plans[g], plan)
			}
		}(g)
	}
	close(start)
	wg.Wait()
	if cs := env.ip.CacheSize(); cs > len(env.qs) {
		t.Errorf("plan cache holds %d entries for %d distinct keys", cs, len(env.qs))
	}
	// All goroutines must have received the same *CompiledPlan per key.
	for g := 1; g < len(plans); g++ {
		if len(plans[g]) != len(plans[0]) {
			continue
		}
		for i := range plans[g] {
			if plans[g][i] != plans[0][i] {
				t.Fatalf("goroutine %d got a different plan instance for query %d", g, i)
			}
		}
	}
}

// TestMultiRunOptionsNormalize pins the defaulting rules of the executor
// options.
func TestMultiRunOptionsNormalize(t *testing.T) {
	for _, tc := range []struct {
		in       MultiRunOptions
		par, bat int
	}{
		{MultiRunOptions{}, 1, DefaultBatchSize},
		{MultiRunOptions{Parallelism: -3, BatchSize: -1}, 1, 1},
		{MultiRunOptions{Parallelism: 4, BatchSize: 2}, 4, 2},
		{MultiRunOptions{Parallelism: 0, BatchSize: 7}, 1, 7},
	} {
		got := tc.in.normalize()
		if got.Parallelism != tc.par || got.BatchSize != tc.bat {
			t.Errorf("normalize(%+v) = %+v, want P=%d batch=%d", tc.in, got, tc.par, tc.bat)
		}
	}
}

// TestChunkRuns pins the run partitioner.
func TestChunkRuns(t *testing.T) {
	runs := []string{"a", "b", "c", "d", "e"}
	chunks := chunkRuns(runs, 2)
	if len(chunks) != 3 || len(chunks[0]) != 2 || len(chunks[2]) != 1 {
		t.Errorf("chunkRuns(5, 2) = %v", chunks)
	}
	if got := chunkRuns(nil, 3); got != nil {
		t.Errorf("chunkRuns(nil) = %v", got)
	}
	if got := chunkRuns(runs, 10); len(got) != 1 || len(got[0]) != 5 {
		t.Errorf("chunkRuns(5, 10) = %v", got)
	}
}

// TestExecuteMultiRunNoStore: an evaluator compiled without a store must
// refuse multi-run execution cleanly instead of panicking.
func TestExecuteMultiRunNoStore(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	w := buildRandomWorkflow(rng, "nostore", 3, false)
	ip, err := NewIndexProj(nil, w)
	if err != nil {
		t.Fatal(err)
	}
	plan := &CompiledPlan{Probes: []Probe{{Proc: "p00", Port: "x0", Index: value.EmptyIndex}}}
	if _, err := ip.ExecuteMultiRun(context.Background(), plan, []string{"r1", "r2"}, MultiRunOptions{Parallelism: 2}); err == nil {
		t.Fatal("expected an error from ExecuteMultiRun without a store")
	}
}
