package lineage

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/value"
	"repro/internal/workflow"
)

// This file contains the central correctness property of the reproduction:
// on randomly generated workflows, inputs, query bindings and focus sets,
// the three lineage implementations — NI over the store, the in-memory
// reference over the raw trace, and INDEXPROJ — return identical results.

// procKind describes a generatable processor type.
type procKind struct {
	typ   string
	inDDs []int
	outDD int
}

var kinds = []procKind{
	{typ: "g_id", inDDs: []int{0}, outDD: 0},
	{typ: "g_up", inDDs: []int{0}, outDD: 0},
	{typ: "g_list", inDDs: []int{0}, outDD: 1},
	{typ: "g_sum", inDDs: []int{1}, outDD: 0},
	{typ: "g_flat", inDDs: []int{2}, outDD: 1},
	{typ: "g_rev", inDDs: []int{1}, outDD: 1},
	{typ: "g_pair", inDDs: []int{0, 0}, outDD: 0},
	{typ: "g_mix", inDDs: []int{0, 1}, outDD: 0},
}

func propertyRegistry() *engine.Registry {
	r := engine.NewRegistry()
	join := func(args []value.Value) string {
		parts := make([]string, len(args))
		for i, a := range args {
			parts[i] = value.Encode(a)
		}
		return strings.Join(parts, "|")
	}
	r.Register("g_id", func(args []value.Value) ([]value.Value, error) {
		return []value.Value{args[0]}, nil
	})
	r.Register("g_up", func(args []value.Value) ([]value.Value, error) {
		return []value.Value{value.Str("u(" + join(args) + ")")}, nil
	})
	r.Register("g_list", func(args []value.Value) ([]value.Value, error) {
		s := join(args)
		return []value.Value{value.Strs(s+"/0", s+"/1")}, nil
	})
	r.Register("g_sum", func(args []value.Value) ([]value.Value, error) {
		return []value.Value{value.Str("sum(" + join(args) + ")")}, nil
	})
	r.Register("g_flat", func(args []value.Value) ([]value.Value, error) {
		f, err := value.Flatten(args[0])
		if err != nil {
			return nil, err
		}
		return []value.Value{f}, nil
	})
	r.Register("g_rev", func(args []value.Value) ([]value.Value, error) {
		elems := args[0].Elems()
		out := make([]value.Value, len(elems))
		for i, e := range elems {
			out[len(elems)-1-i] = e
		}
		return []value.Value{value.List(out...)}, nil
	})
	r.Register("g_pair", func(args []value.Value) ([]value.Value, error) {
		return []value.Value{value.Str("p(" + join(args) + ")")}, nil
	})
	r.Register("g_mix", func(args []value.Value) ([]value.Value, error) {
		return []value.Value{value.Str("m(" + join(args) + ")")}, nil
	})
	return r
}

// wfBuilder incrementally builds a random valid workflow, tracking the
// statically propagated depth of every available source port.
type wfBuilder struct {
	rng  *rand.Rand
	wf   *workflow.Workflow
	pool []poolEntry // connectable sources with their static depths
	seq  int
}

type poolEntry struct {
	proc  string // "" for workflow inputs
	port  string
	depth int
}

const maxDepth = 3

func buildRandomWorkflow(rng *rand.Rand, name string, nProcs int, allowComposite bool) *workflow.Workflow {
	b := &wfBuilder{rng: rng, wf: workflow.New(name)}
	nIn := 1 + rng.Intn(2)
	for i := 0; i < nIn; i++ {
		depth := rng.Intn(3)
		pname := fmt.Sprintf("in%d", i)
		b.wf.AddInput(pname, depth)
		b.pool = append(b.pool, poolEntry{proc: "", port: pname, depth: depth})
	}
	for i := 0; i < nProcs; i++ {
		if allowComposite && rng.Intn(8) == 0 {
			b.addComposite()
		} else {
			b.addProcessor()
		}
	}
	// Wire 1-2 outputs from the pool (prefer late entries so the graph is
	// deep rather than wide).
	nOut := 1 + rng.Intn(2)
	for i := 0; i < nOut && i < len(b.pool); i++ {
		src := b.pool[len(b.pool)-1-i]
		oname := fmt.Sprintf("out%d", i)
		b.wf.AddOutput(oname, src.depth)
		b.wf.Connect(src.proc, src.port, "", oname)
	}
	return b.wf
}

// addProcessor appends a random processor whose statically-propagated output
// depth stays within maxDepth.
func (b *wfBuilder) addProcessor() {
	for attempt := 0; attempt < 30; attempt++ {
		kind := kinds[b.rng.Intn(len(kinds))]
		srcs := make([]poolEntry, len(kind.inDDs))
		total := 0
		for i := range kind.inDDs {
			srcs[i] = b.pool[b.rng.Intn(len(b.pool))]
			if d := srcs[i].depth - kind.inDDs[i]; d > 0 {
				total += d
			}
		}
		outDepth := kind.outDD + total
		if outDepth > maxDepth {
			continue
		}
		name := fmt.Sprintf("p%02d", b.seq)
		b.seq++
		inputs := make([]workflow.Port, len(kind.inDDs))
		for i, dd := range kind.inDDs {
			inputs[i] = workflow.In(fmt.Sprintf("x%d", i), dd)
		}
		b.wf.AddProcessor(name, kind.typ, inputs, []workflow.Port{workflow.Out("y", kind.outDD)})
		for i, src := range srcs {
			b.wf.Connect(src.proc, src.port, name, fmt.Sprintf("x%d", i))
		}
		b.pool = append(b.pool, poolEntry{proc: name, port: "y", depth: outDepth})
		return
	}
	// Fall back to an identity over any source (always depth-safe).
	src := b.pool[b.rng.Intn(len(b.pool))]
	name := fmt.Sprintf("p%02d", b.seq)
	b.seq++
	b.wf.AddProcessor(name, "g_id", []workflow.Port{workflow.In("x0", src.depth)}, []workflow.Port{workflow.Out("y", src.depth)})
	b.wf.Connect(src.proc, src.port, name, "x0")
	b.pool = append(b.pool, poolEntry{proc: name, port: "y", depth: src.depth})
}

// addComposite appends a nested dataflow with 1-2 inner processors over a
// single depth-0 input.
func (b *wfBuilder) addComposite() {
	// Find a source to drive it; the sub-workflow input is declared depth 0,
	// so a deeper source iterates the composite.
	src := b.pool[b.rng.Intn(len(b.pool))]
	sub := workflow.New(fmt.Sprintf("sub%02d", b.seq))
	sub.AddInput("a", 0)
	inner1 := "g_list"
	sub.AddProcessor("i0", inner1, []workflow.Port{workflow.In("x0", 0)}, []workflow.Port{workflow.Out("y", 1)})
	sub.Connect("", "a", "i0", "x0")
	lastPort, lastDepth := "y", 1
	lastProc := "i0"
	if b.rng.Intn(2) == 0 {
		sub.AddProcessor("i1", "g_up", []workflow.Port{workflow.In("x0", 0)}, []workflow.Port{workflow.Out("y", 0)})
		sub.Connect("i0", "y", "i1", "x0")
		lastProc, lastPort, lastDepth = "i1", "y", 1
	}
	sub.AddOutput("b", lastDepth)
	sub.Connect(lastProc, lastPort, "", "b")

	// The composite's effective output depth: sub depth + iteration over src.
	iterDepth := src.depth // dd(a)=0
	if iterDepth < 0 {
		iterDepth = 0
	}
	outDepth := lastDepth + iterDepth
	if outDepth > maxDepth {
		// Too deep; add a plain processor instead.
		b.addProcessor()
		return
	}
	name := fmt.Sprintf("p%02d", b.seq)
	b.seq++
	b.wf.AddComposite(name, sub)
	b.wf.Connect(src.proc, src.port, name, "a")
	b.pool = append(b.pool, poolEntry{proc: name, port: "b", depth: outDepth})
}

// randomInput builds a value of exactly the given depth; when allowEmpty is
// set, sublists are occasionally empty. Empty collections break extensional
// provenance paths (zero activations), where INDEXPROJ deliberately
// overapproximates (see DESIGN.md §3): the strict three-way equality below
// therefore uses non-empty inputs, and TestEmptyCollectionsSubset checks the
// containment NI ⊆ INDEXPROJ on inputs with empty sublists.
func randomInput(rng *rand.Rand, depth int, label string, allowEmpty bool) value.Value {
	if depth == 0 {
		return value.Str(label)
	}
	n := 1 + rng.Intn(3)
	if allowEmpty && rng.Intn(10) == 0 {
		n = 0
	}
	elems := make([]value.Value, n)
	for i := range elems {
		elems[i] = randomInput(rng, depth-1, fmt.Sprintf("%s.%d", label, i), allowEmpty)
	}
	return value.List(elems...)
}

func TestThreeWayEquivalenceRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("long randomized property test")
	}
	rng := rand.New(rand.NewSource(2024))
	reg := propertyRegistry()
	for trial := 0; trial < 60; trial++ {
		w := buildRandomWorkflow(rng, fmt.Sprintf("rw%d", trial), 3+rng.Intn(8), true)
		if err := w.Validate(); err != nil {
			t.Fatalf("trial %d: generated invalid workflow: %v", trial, err)
		}
		inputs := map[string]value.Value{}
		for _, in := range w.Inputs {
			inputs[in.Name] = randomInput(rng, in.DeclaredDepth, in.Name, false)
		}
		e := engine.New(reg)
		_, tr, err := e.RunTrace(w, "run", inputs)
		if err != nil {
			t.Fatalf("trial %d: engine: %v (workflow %s)", trial, err, mustJSON(w))
		}
		s, err := store.OpenMemory()
		if err != nil {
			t.Fatal(err)
		}
		if err := s.StoreTrace(tr); err != nil {
			t.Fatal(err)
		}
		ni := NewNaive(s)
		mem := NewNaiveMem(tr)
		ip, err := NewIndexProj(s, w)
		if err != nil {
			t.Fatal(err)
		}

		// Collect candidate query bindings: xform outputs plus workflow
		// outputs, at recorded and truncated granularities.
		type q struct {
			proc, port string
			idx        value.Index
		}
		var queries []q
		for _, ev := range tr.Xforms {
			for _, out := range ev.Outputs {
				queries = append(queries, q{out.Proc, out.Port, out.Index})
				if len(out.Index) > 0 && rng.Intn(2) == 0 {
					queries = append(queries, q{out.Proc, out.Port, out.Index.Truncate(rng.Intn(len(out.Index)))})
				}
			}
		}
		for _, ev := range tr.Xfers {
			if ev.To.Proc == trace.WorkflowProc {
				queries = append(queries, q{ev.To.Proc, ev.To.Port, ev.To.Index})
			}
		}
		if len(queries) == 0 {
			s.Close()
			continue
		}
		// All processor names appearing in the trace are focus candidates.
		procSet := map[string]bool{}
		for _, ev := range tr.Xforms {
			procSet[ev.Proc] = true
		}
		var procs []string
		for p := range procSet {
			procs = append(procs, p)
		}

		for probe := 0; probe < 8; probe++ {
			query := queries[rng.Intn(len(queries))]
			focus := NewFocus()
			for _, p := range procs {
				if rng.Intn(3) == 0 {
					focus[p] = true
				}
			}
			a, err := ni.Lineage("run", query.proc, query.port, query.idx, focus)
			if err != nil {
				t.Fatalf("trial %d: NI: %v", trial, err)
			}
			m, err := mem.Lineage(query.proc, query.port, query.idx, focus)
			if err != nil {
				t.Fatalf("trial %d: NaiveMem: %v", trial, err)
			}
			if !a.Equal(m) {
				t.Fatalf("trial %d: NI %v != NaiveMem %v\nquery %s:%s%v focus %v\nworkflow: %s",
					trial, a, m, query.proc, query.port, query.idx, focus.Names(), mustJSON(w))
			}
			b, err := ip.Lineage("run", query.proc, query.port, query.idx, focus)
			if err != nil {
				t.Fatalf("trial %d: INDEXPROJ: %v\nquery %s:%s%v focus %v\nworkflow: %s",
					trial, err, query.proc, query.port, query.idx, focus.Names(), mustJSON(w))
			}
			if !a.Equal(b) {
				t.Fatalf("trial %d: NI %v != INDEXPROJ %v\nquery %s:%s%v focus %v\nworkflow: %s",
					trial, a, b, query.proc, query.port, query.idx, focus.Names(), mustJSON(w))
			}
		}
		s.Close()
	}
}

func mustJSON(w *workflow.Workflow) string {
	data, err := w.MarshalJSON()
	if err != nil {
		return err.Error()
	}
	return string(data)
}

// TestEmptyCollectionsSubset: with empty sublists in play, extensional paths
// may vanish (a processor over an empty collection has no activations), so
// NI's answer can only shrink; INDEXPROJ, which inverts transformations
// value-independently, must still return a superset.
func TestEmptyCollectionsSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	reg := propertyRegistry()
	for trial := 0; trial < 40; trial++ {
		w := buildRandomWorkflow(rng, fmt.Sprintf("ew%d", trial), 3+rng.Intn(8), true)
		inputs := map[string]value.Value{}
		for _, in := range w.Inputs {
			inputs[in.Name] = randomInput(rng, in.DeclaredDepth, in.Name, true)
		}
		e := engine.New(reg)
		_, tr, err := e.RunTrace(w, "run", inputs)
		if err != nil {
			t.Fatal(err)
		}
		s, err := store.OpenMemory()
		if err != nil {
			t.Fatal(err)
		}
		if err := s.StoreTrace(tr); err != nil {
			t.Fatal(err)
		}
		ni := NewNaive(s)
		ip, err := NewIndexProj(s, w)
		if err != nil {
			t.Fatal(err)
		}
		var procs []string
		for _, p := range w.Processors {
			procs = append(procs, p.Name)
		}
		for probe := 0; probe < 5 && len(w.Outputs) > 0; probe++ {
			out := w.Outputs[rng.Intn(len(w.Outputs))]
			focus := NewFocus()
			for _, p := range procs {
				if rng.Intn(2) == 0 {
					focus[p] = true
				}
			}
			a, err := ni.Lineage("run", trace.WorkflowProc, out.Name, value.EmptyIndex, focus)
			if err != nil {
				t.Fatal(err)
			}
			b, err := ip.Lineage("run", trace.WorkflowProc, out.Name, value.EmptyIndex, focus)
			if err != nil {
				t.Fatal(err)
			}
			ipKeys := map[string]bool{}
			for _, k := range b.Keys() {
				ipKeys[k] = true
			}
			for _, k := range a.Keys() {
				if !ipKeys[k] {
					t.Fatalf("trial %d: NI entry %s missing from INDEXPROJ result %v\nworkflow: %s",
						trial, k, b, mustJSON(w))
				}
			}
		}
		s.Close()
	}
}

// TestLoadTraceEquivalence: a trace persisted and reconstructed from the
// store supports the in-memory reference algorithm with answers identical
// to the original trace's — the storage round trip loses nothing.
func TestLoadTraceEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(314))
	reg := propertyRegistry()
	for trial := 0; trial < 15; trial++ {
		w := buildRandomWorkflow(rng, fmt.Sprintf("lt%d", trial), 3+rng.Intn(6), true)
		inputs := map[string]value.Value{}
		for _, in := range w.Inputs {
			inputs[in.Name] = randomInput(rng, in.DeclaredDepth, in.Name, false)
		}
		_, tr, err := engine.New(reg).RunTrace(w, "run", inputs)
		if err != nil {
			t.Fatal(err)
		}
		s, err := store.OpenMemory()
		if err != nil {
			t.Fatal(err)
		}
		if err := s.StoreTrace(tr); err != nil {
			t.Fatal(err)
		}
		back, err := s.LoadTrace("run")
		if err != nil {
			t.Fatal(err)
		}
		if back.NumRecords() != tr.NumRecords() {
			t.Fatalf("trial %d: records %d != %d", trial, back.NumRecords(), tr.NumRecords())
		}
		orig := NewNaiveMem(tr)
		rebuilt := NewNaiveMem(back)
		for probe := 0; probe < 5 && len(tr.Xforms) > 0; probe++ {
			ev := tr.Xforms[rng.Intn(len(tr.Xforms))]
			out := ev.Outputs[0]
			focus := NewFocus()
			for _, e := range tr.Xforms {
				if rng.Intn(3) == 0 {
					focus[e.Proc] = true
				}
			}
			a, err := orig.Lineage(out.Proc, out.Port, out.Index, focus)
			if err != nil {
				t.Fatal(err)
			}
			b, err := rebuilt.Lineage(out.Proc, out.Port, out.Index, focus)
			if err != nil {
				t.Fatal(err)
			}
			if !a.Equal(b) {
				t.Fatalf("trial %d: original %v != rebuilt %v", trial, a, b)
			}
		}
		s.Close()
	}
}

// TestZipBranchesEquivalenceRandom: two parallel one-to-one branches of the
// same list are zipped back together — the dot operands are shape-safe by
// construction, so the equivalence property extends to the dot combinator
// under randomized sizes and query indices.
func TestZipBranchesEquivalenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(2718))
	reg := propertyRegistry()
	for trial := 0; trial < 20; trial++ {
		w := workflow.New(fmt.Sprintf("zip%d", trial))
		w.AddInput("in", 1)
		w.AddOutput("out", 1)
		mk := func(branch string, length int) (string, string) {
			prev, prevPort := "", "in"
			for i := 0; i < length; i++ {
				name := fmt.Sprintf("%s%02d", branch, i)
				w.AddProcessor(name, "g_up", []workflow.Port{workflow.In("x0", 0)}, []workflow.Port{workflow.Out("y", 0)})
				w.Connect(prev, prevPort, name, "x0")
				prev, prevPort = name, "y"
			}
			return prev, prevPort
		}
		ap, app := mk("a", 1+rng.Intn(4))
		bp, bpp := mk("b", 1+rng.Intn(4))
		zip := w.AddProcessor("zip", "g_pair",
			[]workflow.Port{workflow.In("l", 0), workflow.In("r", 0)},
			[]workflow.Port{workflow.Out("y", 0)})
		zip.Dot = true
		w.Connect(ap, app, "zip", "l")
		w.Connect(bp, bpp, "zip", "r")
		w.Connect("zip", "y", "", "out")

		n := 1 + rng.Intn(5)
		items := make([]string, n)
		for i := range items {
			items[i] = fmt.Sprintf("v%d", i)
		}
		_, tr, err := engine.New(reg).RunTrace(w, "run", map[string]value.Value{"in": value.Strs(items...)})
		if err != nil {
			t.Fatal(err)
		}
		s, err := store.OpenMemory()
		if err != nil {
			t.Fatal(err)
		}
		if err := s.StoreTrace(tr); err != nil {
			t.Fatal(err)
		}
		ni := NewNaive(s)
		ip, err := NewIndexProj(s, w)
		if err != nil {
			t.Fatal(err)
		}
		for probe := 0; probe < 4; probe++ {
			idx := value.Ix(rng.Intn(n))
			if rng.Intn(4) == 0 {
				idx = value.EmptyIndex
			}
			focus := NewFocus("a00", "b00", "zip")
			a, err := ni.Lineage("run", trace.WorkflowProc, "out", idx, focus)
			if err != nil {
				t.Fatal(err)
			}
			b, err := ip.Lineage("run", trace.WorkflowProc, "out", idx, focus)
			if err != nil {
				t.Fatal(err)
			}
			if !a.Equal(b) {
				t.Fatalf("trial %d idx %v: NI %v != INDEXPROJ %v", trial, idx, a, b)
			}
			// Fine-grained zip: element i depends on exactly element i of
			// each branch head.
			if len(idx) == 1 {
				for _, e := range a.Entries() {
					if e.Proc != "zip" && !e.Index.Equal(idx) {
						t.Fatalf("trial %d: zip lineage leaked index %v for query %v", trial, e.Index, idx)
					}
				}
			}
		}
		s.Close()
	}
}
