package lineage

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/iter"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/value"
	"repro/internal/workflow"
)

// IndexProj implements the paper's intensional lineage algorithm (Alg. 2,
// §3.3). A query lin(⟨P:Y[q]⟩, 𝒫) is answered in two steps:
//
//	(s1) Compile: traverse the *workflow specification graph* upwards from
//	     P:Y, applying the index projection rule (Def. 4 / Prop. 1) at each
//	     processor to rewrite the query index intensionally — without
//	     touching the trace. The output is a plan: the list of trace probes
//	     Q(P', X_i, p_i), one per input port of each focus processor on the
//	     traversed paths.
//	(s2) Execute: run each probe as one indexed lookup against the store.
//
// Plans are cached per (binding, focus) — all queries over traces of the
// same workflow share the same structure — and a single plan is executed
// once per run for multi-run queries (§3.4), which is what makes INDEXPROJ's
// multi-run cost proportional to t2 only (Fig. 4). The cache key also pins
// the store's topology generation (see plancache.go), so an evaluator whose
// store was reopened under a different shard ring never reuses plans cached
// against the old layout.
//
// An IndexProj is safe for concurrent use: the plan cache (the private
// read-mostly map by default, an injected SharedPlanCache in server
// deployments) is concurrency-safe, and the store probes go through
// store.LineageQuerier, whose implementations are required to be
// concurrency-safe.
type IndexProj struct {
	q  store.LineageQuerier
	wf *workflow.Workflow
	d  *workflow.Depths

	cache   PlanCache
	scope   string // cache-key namespace ("" outside multi-tenant servers)
	topoGen string // store topology generation pinned into every cache key
}

// Probe is one trace query Q(P, X, p) of a compiled plan.
type Probe struct {
	Proc  string
	Port  string
	Index value.Index
}

func (p Probe) String() string { return p.Proc + ":" + p.Port + p.Index.String() }

// CompiledPlan is the result of the specification-graph traversal: the exact
// set of trace probes a query needs, independent of any particular run.
type CompiledPlan struct {
	Probes []Probe
}

// NewIndexProj prepares the evaluator for one workflow: it validates the
// specification and runs PROPAGATEDEPTHS (Alg. 1) once. This is the offline
// part of the pre-processing cost t1 reported in Fig. 8. The querier may be
// nil when only Compile is used (no trace access).
func NewIndexProj(q store.LineageQuerier, wf *workflow.Workflow) (*IndexProj, error) {
	if err := wf.Validate(); err != nil {
		return nil, fmt.Errorf("lineage: %w", err)
	}
	d, err := workflow.PropagateDepths(wf)
	if err != nil {
		return nil, fmt.Errorf("lineage: %w", err)
	}
	return &IndexProj{
		q:       q,
		wf:      wf,
		d:       d,
		cache:   newMapPlanCache(),
		topoGen: topologyGen(q),
	}, nil
}

// UsePlanCache routes this evaluator's compilations through a shared plan
// cache under the given scope (the tenant namespace in provd). Keys carry
// the scope, the workflow name and the store topology generation, so
// evaluators of different tenants — or of the same tenant over a reopened
// store with a different shard ring — can share one cache without ever
// observing each other's plans. Call before the first query; swapping the
// cache concurrently with queries is not supported.
func (ip *IndexProj) UsePlanCache(cache PlanCache, scope string) {
	if cache == nil {
		cache = newMapPlanCache()
	}
	ip.cache = cache
	ip.scope = scope
}

// Lineage evaluates lin(⟨proc:port[idx]⟩, focus) within one run.
func (ip *IndexProj) Lineage(runID, proc, port string, idx value.Index, focus Focus) (*Result, error) {
	total := obs.Start(ipQueryNs)
	plan, err := ip.Compile(proc, port, idx, focus)
	if err != nil {
		total.End()
		return nil, err
	}
	result := NewResult()
	if err := ip.executeInto(result, plan, runID); err != nil {
		total.End()
		return nil, err
	}
	d := total.End()
	ipQueries.Add(1)
	if obs.SlowExceeded(d) {
		obs.Slow("lineage.indexproj", d,
			"run", runID,
			"binding", proc+":"+port+idx.String(),
			"probes", strconv.Itoa(len(plan.Probes)),
			"bindings", strconv.Itoa(result.Len()))
	}
	return result, nil
}

// LineageMultiRun evaluates the query over a set of runs: the specification
// graph is traversed once (one Compile), and only the probes are re-executed
// per run (§3.4).
func (ip *IndexProj) LineageMultiRun(runIDs []string, proc, port string, idx value.Index, focus Focus) (*Result, error) {
	total := obs.Start(ipQueryNs)
	plan, err := ip.Compile(proc, port, idx, focus)
	if err != nil {
		total.End()
		return nil, err
	}
	runIDs = dedupRuns(runIDs)
	if _, _, err := validateRuns(ip.q.HasRun, runIDs, false); err != nil {
		total.End()
		return nil, err
	}
	result := NewResult()
	for _, runID := range runIDs {
		if err := ip.executeInto(result, plan, runID); err != nil {
			total.End()
			return nil, err
		}
	}
	d := total.End()
	ipQueries.Add(1)
	if obs.SlowExceeded(d) {
		obs.Slow("lineage.indexproj", d,
			"runs", strconv.Itoa(len(runIDs)),
			"binding", proc+":"+port+idx.String(),
			"probes", strconv.Itoa(len(plan.Probes)),
			"bindings", strconv.Itoa(result.Len()))
	}
	return result, nil
}

// Execute runs a compiled plan against one run.
func (ip *IndexProj) Execute(plan *CompiledPlan, runID string) (*Result, error) {
	result := NewResult()
	if err := ip.executeInto(result, plan, runID); err != nil {
		return nil, err
	}
	return result, nil
}

func (ip *IndexProj) executeInto(result *Result, plan *CompiledPlan, runID string) error {
	sp := obs.Start(ipProbeNs)
	defer sp.End()
	var added int64
	for _, pr := range plan.Probes {
		bs, err := ip.q.InputBindings(runID, pr.Proc, pr.Port, pr.Index)
		if err != nil {
			return err
		}
		for _, b := range bs {
			v, err := ip.q.Value(b.RunID, b.ValID)
			if err != nil {
				return err
			}
			result.Add(Entry{RunID: b.RunID, Proc: b.Proc, Port: b.Port, Index: b.Index, Ctx: b.Ctx, Value: v})
			added++
		}
	}
	ipProbes.Add(int64(len(plan.Probes)))
	ipBindings.Add(added)
	return nil
}

// CacheSize returns the number of compiled plans in this evaluator's private
// cache. For evaluators routed through a shared cache it reports the shared
// cache's total size when that cache is a *SharedPlanCache, 0 otherwise.
func (ip *IndexProj) CacheSize() int {
	switch c := ip.cache.(type) {
	case *mapPlanCache:
		return c.len()
	case *SharedPlanCache:
		return c.Len()
	default:
		return 0
	}
}

// TopologyGen returns the store topology generation pinned into this
// evaluator's cache keys.
func (ip *IndexProj) TopologyGen() string { return ip.topoGen }

// Compile traverses the workflow specification graph and produces (or
// retrieves from cache) the probe plan for a query binding and focus set.
// The cache's read path never serializes concurrent queries sharing a plan.
// A cache miss compiles outside any lock (two racing compilations of the
// same key both produce correct, equal plans; the first insert wins).
func (ip *IndexProj) Compile(proc, port string, idx value.Index, focus Focus) (*CompiledPlan, error) {
	key := planKey(ip.scope, ip.wf.Name, ip.topoGen, proc, port, idx, focus)
	if plan, ok := ip.cache.Get(key); ok {
		ipCacheHits.Add(1)
		return plan, nil
	}
	ipCacheMiss.Add(1)

	sp := obs.Start(ipPlanNs)
	defer sp.End()
	c := &compiler{
		ip:        ip,
		focus:     focus,
		probeSeen: make(map[string]bool),
		visited:   make(map[string]bool),
	}
	if err := c.start(proc, port, idx); err != nil {
		return nil, err
	}
	return ip.cache.Add(key, &CompiledPlan{Probes: c.probes}), nil
}

// scope is one (sub-)workflow frame of the compilation traversal.
type scope struct {
	wf     *workflow.Workflow
	d      *workflow.Depths
	base   string // path of the enclosing composite ("" at the root)
	ctxLen int    // total context-prefix length of indices in this frame

	// parent/compProc link a sub-workflow frame to the composite processor
	// that hosts it. coveredByParent is true when the frame was entered by
	// descending from the parent's visitOutput, whose black-box continuation
	// already covers everything upstream of the composite at equal or
	// coarser granularity; frames a query *starts* in are not covered and
	// must exit explicitly through the boundary.
	parent          *scope
	compProc        *workflow.Processor
	coveredByParent bool
}

// qualifyName returns the trace name of a processor in this frame.
func (sc *scope) qualifyName(proc string) string {
	if sc.base == "" {
		return proc
	}
	return sc.base + "/" + proc
}

type compiler struct {
	ip        *IndexProj
	focus     Focus
	probes    []Probe
	probeSeen map[string]bool
	visited   map[string]bool
}

// start resolves the query binding's frame (descending through composite
// path segments) and begins the traversal.
func (c *compiler) start(proc, port string, idx value.Index) error {
	sc := &scope{wf: c.ip.wf, d: c.ip.d, base: "", ctxLen: 0}
	if proc == trace.WorkflowProc {
		if _, ok := sc.wf.Output(port); ok {
			return c.visitWorkflowOutput(sc, port, idx)
		}
		if _, ok := sc.wf.Input(port); ok {
			return nil // a workflow input is its own (empty) lineage
		}
		return fmt.Errorf("lineage: workflow has no port %q", port)
	}
	segments := strings.Split(proc, "/")
	for len(segments) > 1 {
		comp := sc.wf.Processor(segments[0])
		if comp == nil || !comp.IsComposite() {
			return fmt.Errorf("lineage: no nested dataflow %q in %q", segments[0], sc.wf.Name)
		}
		sub := sc.d.Sub(comp.Name)
		if sub == nil {
			return fmt.Errorf("lineage: no depths for nested dataflow %q", comp.Name)
		}
		sc = &scope{
			wf:       comp.Sub,
			d:        sub,
			base:     sc.qualifyName(comp.Name),
			ctxLen:   sc.ctxLen + sc.d.IterationDepth(comp.Name),
			parent:   sc,
			compProc: comp,
		}
		segments = segments[1:]
	}
	p := sc.wf.Processor(segments[0])
	if p == nil {
		return fmt.Errorf("lineage: no processor %q in workflow %q", proc, sc.wf.Name)
	}
	if _, _, ok := p.Output(port); ok {
		return c.visitOutput(sc, p, port, idx)
	}
	if _, _, ok := p.Input(port); ok {
		return c.visitInput(sc, p, port, idx)
	}
	return fmt.Errorf("lineage: processor %q has no port %q", proc, port)
}

func (c *compiler) seen(kind, name, port string, idx value.Index) bool {
	key := kind + "\x01" + name + "\x01" + port + "\x01" + idx.String()
	if c.visited[key] {
		return true
	}
	c.visited[key] = true
	return false
}

func (c *compiler) addProbe(proc, port string, idx value.Index) {
	pr := Probe{Proc: proc, Port: port, Index: idx}
	key := pr.String()
	if !c.probeSeen[key] {
		c.probeSeen[key] = true
		c.probes = append(c.probes, pr)
	}
}

// anyFocusInside reports whether the focus set names a processor inside the
// composite with the given qualified name.
func (c *compiler) anyFocusInside(qualified string) bool {
	prefix := qualified + "/"
	for name := range c.focus {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// iterPlanFor returns the statically-computed iteration plan of a processor
// within a frame (built once by PROPAGATEDEPTHS).
func (c *compiler) iterPlanFor(sc *scope, p *workflow.Processor) *iter.Plan {
	return sc.d.Plan(p.Name)
}

// visitOutput handles one traversal step through a processor: the index
// projection rule apportions fragments of the output index to each input
// port (Alg. 2, first branch). For a nested dataflow containing focus
// processors, the traversal additionally descends into the sub-workflow.
func (c *compiler) visitOutput(sc *scope, p *workflow.Processor, port string, idx value.Index) error {
	if c.seen("out", sc.qualifyName(p.Name), port, idx) {
		return nil
	}
	qualified := sc.qualifyName(p.Name)

	if p.IsComposite() && c.anyFocusInside(qualified) {
		sub := sc.d.Sub(p.Name)
		if sub == nil {
			return fmt.Errorf("lineage: no depths for nested dataflow %q", qualified)
		}
		subScope := &scope{
			wf:              p.Sub,
			d:               sub,
			base:            qualified,
			ctxLen:          sc.ctxLen + sc.d.IterationDepth(p.Name),
			parent:          sc,
			compProc:        p,
			coveredByParent: true,
		}
		if err := c.visitWorkflowOutput(subScope, port, idx); err != nil {
			return err
		}
	}

	// Black-box continuation: invert the iteration intensionally. Positions
	// of the local output index beyond the iteration depth m(P) address
	// structure inside the processor's declared output and are dropped —
	// the graceful granularity degradation of §2.3.
	plan := c.iterPlanFor(sc, p)
	ctx := idx.Truncate(sc.ctxLen)
	local := idx.Slice(sc.ctxLen, len(idx))
	for i, in := range p.Inputs {
		frag, _ := plan.Project(local, i)
		full := ctx.Concat(frag)
		if c.focus[qualified] {
			c.addProbe(qualified, in.Name, full)
		}
		if err := c.visitInput(sc, p, in.Name, full); err != nil {
			return err
		}
	}
	return nil
}

// visitInput follows the (unique) arc into an input port upstream (Alg. 2,
// second branch). Unconnected ports and workflow inputs terminate the path;
// reaching the enclosing sub-workflow's own input also terminates, because
// the parent-level black-box continuation already covers everything
// upstream of the composite at equal or coarser granularity.
func (c *compiler) visitInput(sc *scope, p *workflow.Processor, port string, idx value.Index) error {
	if c.seen("in", sc.qualifyName(p.Name), port, idx) {
		return nil
	}
	arc, ok := sc.wf.IncomingArc(workflow.PortID{Proc: p.Name, Port: port})
	if !ok {
		return nil // default value: a source
	}
	if arc.From.Proc == workflow.WorkflowPseudoProc {
		return c.reachedFrameInput(sc, arc.From.Port, idx)
	}
	src := sc.wf.Processor(arc.From.Proc)
	if src == nil {
		return fmt.Errorf("lineage: arc references unknown processor %q", arc.From.Proc)
	}
	return c.visitOutput(sc, src, arc.From.Port, idx)
}

// reachedFrameInput handles a traversal path arriving at the current frame's
// own input port. At the root this is a source. In a sub-workflow frame
// entered by descent it is also terminal (the parent black-box continuation
// subsumes the upstream exploration). In a frame the query started in, the
// traversal exits through the boundary: the activation fragment of the
// context is apportioned to the composite's input by the index projection
// rule and the residual (finer-than-boundary) part carries across, exactly
// as the engine's boundary xfer events record extensionally.
func (c *compiler) reachedFrameInput(sc *scope, port string, idx value.Index) error {
	if sc.parent == nil || sc.coveredByParent {
		return nil
	}
	comp := sc.compProc
	_, i, ok := comp.Input(port)
	if !ok {
		return fmt.Errorf("lineage: composite %q has no input %q", comp.Name, port)
	}
	plan := c.iterPlanFor(sc.parent, comp)
	q := idx.Slice(sc.parent.ctxLen, sc.ctxLen)
	r := idx.Slice(sc.ctxLen, len(idx))
	frag, _ := plan.Project(q, i)
	full := idx.Truncate(sc.parent.ctxLen).Concat(frag).Concat(r)
	return c.visitInput(sc.parent, comp, port, full)
}

// visitWorkflowOutput follows the arc feeding a workflow-level (or
// sub-workflow-level) output port.
func (c *compiler) visitWorkflowOutput(sc *scope, port string, idx value.Index) error {
	if c.seen("wfout", sc.base, port, idx) {
		return nil
	}
	arc, ok := sc.wf.IncomingArc(workflow.PortID{Proc: workflow.WorkflowPseudoProc, Port: port})
	if !ok {
		return nil // unconnected output (rejected by the engine, legal in a spec)
	}
	if arc.From.Proc == workflow.WorkflowPseudoProc {
		// Input wired straight to output: the path ends at this frame's own
		// input port.
		return c.reachedFrameInput(sc, arc.From.Port, idx)
	}
	src := sc.wf.Processor(arc.From.Proc)
	if src == nil {
		return fmt.Errorf("lineage: arc references unknown processor %q", arc.From.Proc)
	}
	return c.visitOutput(sc, src, arc.From.Port, idx)
}
