// Smoke tests for the example programs: every examples/* program must build
// and run to completion with a zero exit status. The examples double as the
// library's executable documentation, so a broken example is a broken API
// promise.
package repro_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"testing"
	"time"
)

func TestExamples(t *testing.T) {
	if testing.Short() {
		t.Skip("examples build and run whole workflows")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	goTool := filepath.Join(runtime.GOROOT(), "bin", "go")
	if _, err := os.Stat(goTool); err != nil {
		goTool = "go" // fall back to PATH
	}
	binDir := t.TempDir()
	found := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		found++
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			bin := filepath.Join(binDir, name)
			build := exec.Command(goTool, "build", "-o", bin, "./examples/"+name)
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("build failed: %v\n%s", err, out)
			}

			cmd := exec.Command(bin)
			cmd.Dir = t.TempDir() // examples must not depend on the repo CWD
			var stdout, stderr bytes.Buffer
			cmd.Stdout, cmd.Stderr = &stdout, &stderr
			if err := cmd.Start(); err != nil {
				t.Fatal(err)
			}
			done := make(chan error, 1)
			go func() { done <- cmd.Wait() }()
			select {
			case err := <-done:
				if err != nil {
					t.Fatalf("example exited with %v\nstdout:\n%s\nstderr:\n%s", err, &stdout, &stderr)
				}
			case <-time.After(3 * time.Minute):
				cmd.Process.Kill()
				t.Fatalf("example did not finish within 3m\nstdout so far:\n%s", &stdout)
			}
			if stdout.Len() == 0 {
				t.Error("example produced no output")
			}
		})
	}
	if found == 0 {
		t.Fatal("no example programs found")
	}
}
