// Benchmarks regenerating one measurement per table and figure of the
// paper's evaluation (§4). Each benchmark populates its provenance database
// once (outside the timer) and times the operation the corresponding
// table/figure reports. Run with:
//
//	go test -bench=. -benchmem
package repro_test

import (
	"context"
	"fmt"
	"os"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/gen"
	"repro/internal/lineage"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/value"
	"repro/internal/workflow"
)

// BenchmarkTable1Populate measures trace ingestion (the population cost
// behind Table 1's record counts) for a mid-grid configuration.
func BenchmarkTable1Populate(b *testing.B) {
	for _, cfg := range []struct{ l, d int }{{10, 10}, {50, 25}} {
		b.Run(fmt.Sprintf("l=%d_d=%d", cfg.l, cfg.d), func(b *testing.B) {
			records := gen.TestbedRecords(cfg.l, cfg.d)
			b.ReportMetric(float64(records), "records/run")
			for i := 0; i < b.N; i++ {
				env, err := bench.PopulateTestbed(cfg.l, cfg.d, 1)
				if err != nil {
					b.Fatal(err)
				}
				env.Close()
			}
		})
	}
}

// BenchmarkFig4MultiRun measures the multi-run query of Fig. 4 on the GK
// workflow: INDEXPROJ compiles once and probes per run; NI re-traverses
// every run.
func BenchmarkFig4MultiRun(b *testing.B) {
	env, err := bench.PopulateGKPD(10)
	if err != nil {
		b.Fatal(err)
	}
	defer env.Close()
	focus := lineage.NewFocus("get_pathways_by_genes")
	idx := value.Ix(0, 0)

	b.Run("indexproj", func(b *testing.B) {
		ip, err := lineage.NewIndexProj(env.Store, env.GK)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ip.LineageMultiRun(env.GKRuns, trace.WorkflowProc, "paths_per_gene", idx, focus); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		ni := lineage.NewNaive(env.Store)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ni.LineageMultiRun(env.GKRuns, trace.WorkflowProc, "paths_per_gene", idx, focus); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig4ParallelMultiRun measures the parallel multi-run executor
// (worker pool + batched store probes) against the sequential per-run
// baseline on the Fig. 4 workload, across parallelism levels. The plan is
// compiled once outside the timer; only the probe phase (t2) is measured.
func BenchmarkFig4ParallelMultiRun(b *testing.B) {
	env, err := bench.PopulateGKPD(20)
	if err != nil {
		b.Fatal(err)
	}
	defer env.Close()
	for _, q := range []struct {
		name  string
		wf    *workflow.Workflow
		runs  []string
		port  string
		idx   value.Index
		focus lineage.Focus
	}{
		{"GK_focused", env.GK, env.GKRuns, "paths_per_gene",
			value.Ix(0, 0), lineage.NewFocus("get_pathways_by_genes")},
		{"PD_unfocused", env.PD, env.PDRuns, "discovered_proteins",
			value.Ix(0), bench.AllProcs(env.PD)},
	} {
		ip, err := lineage.NewIndexProj(env.Store, q.wf)
		if err != nil {
			b.Fatal(err)
		}
		plan, err := ip.Compile(trace.WorkflowProc, q.port, q.idx, q.focus)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(q.name+"/sequential", func(b *testing.B) {
			opt := lineage.MultiRunOptions{Parallelism: 1, BatchSize: 1}
			for i := 0; i < b.N; i++ {
				if _, err := ip.ExecuteMultiRun(context.Background(), plan, q.runs, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
		for _, p := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/parallel_p%d", q.name, p), func(b *testing.B) {
				opt := lineage.MultiRunOptions{Parallelism: p}
				for i := 0; i < b.N; i++ {
					if _, err := ip.ExecuteMultiRun(context.Background(), plan, q.runs, opt); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkConcurrentQueries measures throughput of independent single-run
// queries issued concurrently from many goroutines against one shared
// IndexProj (plan cache) and store, via the testing harness's RunParallel.
func BenchmarkConcurrentQueries(b *testing.B) {
	env, err := bench.PopulateGKPD(8)
	if err != nil {
		b.Fatal(err)
	}
	defer env.Close()
	ip, err := lineage.NewIndexProj(env.Store, env.GK)
	if err != nil {
		b.Fatal(err)
	}
	focus := lineage.NewFocus("get_pathways_by_genes")
	var seq atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			run := env.GKRuns[int(seq.Add(1))%len(env.GKRuns)]
			if _, err := ip.Lineage(run, trace.WorkflowProc, "paths_per_gene", value.Ix(0, 0), focus); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig6DBSize measures the NI single-run query of Fig. 6 against a
// database holding 10 accumulated runs (l=75, d=50; ~200k records).
func BenchmarkFig6DBSize(b *testing.B) {
	env, err := bench.PopulateTestbed(75, 50, 10)
	if err != nil {
		b.Fatal(err)
	}
	defer env.Close()
	total, err := env.Store.TotalRecords("")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(total), "records")
	focus := bench.FocusedSet()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := env.NaiveQuery(env.RunIDs[0], focus); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7ListSize measures the NI query of Fig. 7 across list sizes.
func BenchmarkFig7ListSize(b *testing.B) {
	for _, d := range []int{10, 75} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			env, err := bench.PopulateTestbed(75, d, 1)
			if err != nil {
				b.Fatal(err)
			}
			defer env.Close()
			focus := bench.FocusedSet()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := env.NaiveQuery(env.RunIDs[0], focus); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig8Preprocess measures t1 of Fig. 8: depth propagation plus plan
// compilation on the bare specification graph.
func BenchmarkFig8Preprocess(b *testing.B) {
	for _, l := range []int{50, 100, 200} {
		b.Run(fmt.Sprintf("l=%d", l), func(b *testing.B) {
			wf := gen.Testbed(l)
			focus := bench.FocusedSet()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ip, err := lineage.NewIndexProj(nil, wf)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := ip.Compile(gen.FinalName, "product", value.Ix(0, 0), focus); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig9Strategies measures the three strategies of Fig. 9 on one
// configuration (l=75): NI, INDEXPROJ focused, INDEXPROJ unfocused.
func BenchmarkFig9Strategies(b *testing.B) {
	for _, d := range []int{10, 150} {
		env, err := bench.PopulateTestbed(75, d, 1)
		if err != nil {
			b.Fatal(err)
		}
		runID := env.RunIDs[0]
		ip, err := lineage.NewIndexProj(env.Store, env.WF)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("d=%d/naive", d), func(b *testing.B) {
			focus := bench.FocusedSet()
			for i := 0; i < b.N; i++ {
				if err := env.NaiveQuery(runID, focus); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("d=%d/indexproj_focused", d), func(b *testing.B) {
			focus := bench.FocusedSet()
			for i := 0; i < b.N; i++ {
				if _, err := ip.Lineage(runID, gen.FinalName, "product", env.QueryIndex(), focus); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("d=%d/indexproj_unfocused", d), func(b *testing.B) {
			focus := env.UnfocusedSet()
			for i := 0; i < b.N; i++ {
				if _, err := ip.Lineage(runID, gen.FinalName, "product", env.QueryIndex(), focus); err != nil {
					b.Fatal(err)
				}
			}
		})
		env.Close()
	}
}

// BenchmarkFig10FocusShare measures INDEXPROJ as the focus set grows towards
// 50% of the processors (Fig. 10).
func BenchmarkFig10FocusShare(b *testing.B) {
	env, err := bench.PopulateTestbed(75, 50, 1)
	if err != nil {
		b.Fatal(err)
	}
	defer env.Close()
	ip, err := lineage.NewIndexProj(env.Store, env.WF)
	if err != nil {
		b.Fatal(err)
	}
	total := env.WF.NumNodes()
	runID := env.RunIDs[0]
	for _, pct := range []int{1, 10, 25, 50} {
		k := total * pct / 100
		if k < 1 {
			k = 1
		}
		focus := env.PartialFocus(k)
		b.Run(fmt.Sprintf("focus=%dpct", pct), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ip.Lineage(runID, gen.FinalName, "product", env.QueryIndex(), focus); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// obsOverheadQuery is the fig4 GK focused query used to price the obs
// instrumentation: one representative hot path through plan cache, probe
// execution and store counters.
func obsOverheadQuery(env *bench.GKPDEnv, ip *lineage.IndexProj) error {
	_, err := ip.Lineage(env.GKRuns[0], trace.WorkflowProc, "paths_per_gene",
		value.Ix(0, 0), lineage.NewFocus("get_pathways_by_genes"))
	return err
}

// BenchmarkObsOverhead runs the fig4 GK focused query with metrics disabled
// and enabled. The two sub-benchmark results are the overhead budget check:
// enabled must stay within a few percent of disabled.
func BenchmarkObsOverhead(b *testing.B) {
	env, err := bench.PopulateGKPD(5)
	if err != nil {
		b.Fatal(err)
	}
	defer env.Close()
	ip, err := lineage.NewIndexProj(env.Store, env.GK)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name    string
		enabled bool
	}{{"disabled", false}, {"enabled", true}} {
		b.Run(mode.name, func(b *testing.B) {
			prev := obs.Enabled()
			obs.SetEnabled(mode.enabled)
			defer obs.SetEnabled(prev)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := obsOverheadQuery(env, ip); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestObsOverheadBudget asserts the ≤5% enabled-path budget on the fig4 GK
// focused query. Wall-clock ratios are noisy on shared runners, so the
// assertion only fires when OBS_OVERHEAD_ASSERT=1 (set in the CI smoke
// step); otherwise the measured ratio is logged and the test passes.
func TestObsOverheadBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("overhead measurement needs repeated timed rounds")
	}
	env, err := bench.PopulateGKPD(5)
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	ip, err := lineage.NewIndexProj(env.Store, env.GK)
	if err != nil {
		t.Fatal(err)
	}
	prev := obs.Enabled()
	defer obs.SetEnabled(prev)

	// Interleaved best-of rounds: alternating the modes within each round
	// cancels machine-wide drift (thermal, noisy neighbours) that a
	// back-to-back A-then-B measurement would fold into the ratio.
	const rounds, iters = 12, 40
	measure := func(enabled bool) time.Duration {
		obs.SetEnabled(enabled)
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := obsOverheadQuery(env, ip); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start)
	}
	measure(true) // warm plan cache and store paths before timing
	bestOff, bestOn := time.Duration(0), time.Duration(0)
	for r := 0; r < rounds; r++ {
		if off := measure(false); bestOff == 0 || off < bestOff {
			bestOff = off
		}
		if on := measure(true); bestOn == 0 || on < bestOn {
			bestOn = on
		}
	}
	ratio := float64(bestOn) / float64(bestOff)
	t.Logf("obs overhead: disabled=%v enabled=%v ratio=%.3f (budget 1.05)", bestOff, bestOn, ratio)
	// Absolute slack absorbs quantization on very fast queries: 150µs per
	// measured block of `iters` queries is a few ns per query.
	budget := time.Duration(float64(bestOff)*1.05) + 150*time.Microsecond
	if bestOn > budget {
		msg := fmt.Sprintf("obs enabled path exceeds budget: disabled=%v enabled=%v budget=%v", bestOff, bestOn, budget)
		if os.Getenv("OBS_OVERHEAD_ASSERT") == "1" {
			t.Fatal(msg)
		}
		t.Log(msg + " (not asserted; set OBS_OVERHEAD_ASSERT=1)")
	}
}

// repostore aliases the store type for the benchmark's mode table.
type repostore = store.Store

// BenchmarkIngest measures bulk trace ingestion on a small testbed
// workload: the same pre-generated traces loaded per-row, through buffered
// batch writers, and through the concurrent ingest executor (the modes of
// the `ingest` experiment, results/ingest.csv).
func BenchmarkIngest(b *testing.B) {
	traces, err := bench.GenerateTestbedTraces(10, 25, 4)
	if err != nil {
		b.Fatal(err)
	}
	var records int
	perRow := func(st *repostore, ts []*trace.Trace) error {
		for _, tr := range ts {
			if err := st.StoreTrace(tr); err != nil {
				return err
			}
		}
		return nil
	}
	for _, tc := range []struct {
		name string
		load func(*repostore, []*trace.Trace) error
	}{
		{"per_row", perRow},
		{"batched", func(st *repostore, ts []*trace.Trace) error {
			return st.IngestTraces(context.Background(), ts, store.IngestOptions{Parallelism: 1})
		}},
		{"batched_parallel_4", func(st *repostore, ts []*trace.Trace) error {
			return st.IngestTraces(context.Background(), ts, store.IngestOptions{Parallelism: 4})
		}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st, err := store.OpenMemory()
				if err != nil {
					b.Fatal(err)
				}
				if err := tc.load(st, traces); err != nil {
					b.Fatal(err)
				}
				if records == 0 {
					if records, err = st.TotalRecords(""); err != nil {
						b.Fatal(err)
					}
				}
				st.Close()
			}
			b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}
