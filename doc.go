// Package repro is a from-scratch Go reproduction of "Fine-grained and
// efficient lineage querying of collection-based workflow provenance"
// (Missier, Paton, Belhajjame; EDBT 2010).
//
// The library implements the complete stack the paper builds on: the
// Taverna-style collection dataflow model with implicit iteration
// (internal/workflow, internal/iter), a data-driven execution engine that
// emits fine-grained provenance traces (internal/engine, internal/trace), an
// embedded relational store with B-tree indexes and a SQL subset behind
// database/sql (internal/reldb, internal/sqlike, internal/store), and the
// paper's contribution — the INDEXPROJ lineage algorithm alongside the naïve
// baseline (internal/lineage) — plus the full experimental evaluation
// (internal/gen, internal/bench, cmd/benchrunner).
//
// Start with internal/core for the high-level API, examples/ for runnable
// scenarios, DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured comparison. The benchmarks in bench_test.go regenerate
// one measurement per table/figure of the paper's evaluation section.
package repro
