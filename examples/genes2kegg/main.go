// genes2kegg runs the paper's motivating bioinformatics workflow (Fig. 1):
// nested lists of gene IDs are mapped to metabolic pathways through a
// (synthetic) KEGG database, and lineage answers the question the paper
// opens with — "why is this particular pathway in the output?".
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/lineage"
	"repro/internal/value"
)

func main() {
	sys, err := core.NewSystem()
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	gen.RegisterGK(sys.Registry(), gen.DefaultKEGG())
	wf := gen.GenesToKegg()
	if err := sys.RegisterWorkflow(wf); err != nil {
		log.Fatal(err)
	}

	// Three gene lists, in the style of [[mmu:20816, mmu:26416], [mmu:328788]].
	inputs := gen.GKInputs(3, 2)
	fmt.Println("input gene lists:", value.Encode(inputs["list_of_geneIDList"]))

	run, err := sys.Run("genes2Kegg", inputs)
	if err != nil {
		log.Fatal(err)
	}
	ppg := run.Outputs["paths_per_gene"]
	fmt.Printf("\npaths_per_gene (%d sub-lists):\n", ppg.Len())
	for i, sub := range ppg.Elems() {
		fmt.Printf("  [%d] %d pathways, e.g. %s\n", i, sub.Len(), first(sub))
	}
	fmt.Println("commonPathways:", value.Encode(run.Outputs["commonPathways"]))

	// The paper's question: which input gene list produced sub-list i of
	// paths_per_gene? Fine-grained lineage answers precisely, because the
	// left branch iterates per sub-list.
	fmt.Println("\nfocused lineage, focus = {get_pathways_by_genes}:")
	focus := lineage.NewFocus("get_pathways_by_genes")
	for i := 0; i < ppg.Len(); i++ {
		res, err := sys.Lineage(core.IndexProj, run.RunID, "", "paths_per_gene", value.Ix(i, 0), focus)
		if err != nil {
			log.Fatal(err)
		}
		for _, e := range res.Entries() {
			el, err := e.Element()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  paths_per_gene[%d] <- genes %s (binding %s)\n", i, value.Encode(el), e)
		}
	}

	// commonPathways flows through the flatten on the right branch, which
	// collapses granularity: every common pathway depends on ALL the genes.
	fmt.Println("\nlineage of commonPathways[0], focus = {merge_gene_lists}:")
	res, err := sys.Lineage(core.IndexProj, run.RunID, "", "commonPathways", value.Ix(0),
		lineage.NewFocus("merge_gene_lists"))
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range res.Entries() {
		el, err := e.Element()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  commonPathways[0] <- %s = %s\n", e, value.Encode(el))
	}
}

func first(v value.Value) string {
	if v.Len() == 0 {
		return "(empty)"
	}
	s, _ := v.Elems()[0].StringVal()
	return s
}
