// Quickstart: define a tiny collection-based workflow, register its
// black-box behaviours, run it with provenance capture, and ask a focused,
// fine-grained lineage question — the 60-second tour of the library.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/lineage"
	"repro/internal/value"
	"repro/internal/workflow"
)

func main() {
	// A workflow: split a CSV line into fields, uppercase each field
	// (implicit iteration: the port expects an atom but receives a list),
	// then join the results.
	w := workflow.New("csvdemo")
	w.AddInput("line", 0)
	w.AddOutput("shout", 0)
	w.AddOutput("fields", 1)
	w.AddProcessor("split", "split_csv",
		[]workflow.Port{workflow.In("text", 0)},
		[]workflow.Port{workflow.Out("fields", 1)})
	w.AddProcessor("upper", "to_upper",
		[]workflow.Port{workflow.In("s", 0)}, // depth 0: iterates over the list
		[]workflow.Port{workflow.Out("r", 0)})
	w.AddProcessor("join", "join_csv",
		[]workflow.Port{workflow.In("items", 1)},
		[]workflow.Port{workflow.Out("text", 0)})
	w.Connect("", "line", "split", "text")
	w.Connect("split", "fields", "upper", "s")
	w.Connect("upper", "r", "join", "items")
	w.Connect("join", "text", "", "shout")
	w.Connect("upper", "r", "", "fields")

	sys, err := core.NewSystem()
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// Black boxes: the engine only sees opaque functions per processor type.
	reg := sys.Registry()
	reg.Register("split_csv", func(args []value.Value) ([]value.Value, error) {
		s, _ := args[0].StringVal()
		return []value.Value{value.Strs(strings.Split(s, ",")...)}, nil
	})
	reg.Register("to_upper", func(args []value.Value) ([]value.Value, error) {
		s, _ := args[0].StringVal()
		return []value.Value{value.Str(strings.ToUpper(s))}, nil
	})
	reg.Register("join_csv", func(args []value.Value) ([]value.Value, error) {
		parts := make([]string, args[0].Len())
		for i, e := range args[0].Elems() {
			parts[i], _ = e.StringVal()
		}
		return []value.Value{value.Str(strings.Join(parts, ","))}, nil
	})

	if err := sys.RegisterWorkflow(w); err != nil {
		log.Fatal(err)
	}
	run, err := sys.Run("csvdemo", map[string]value.Value{
		"line": value.Str("alpha,beta,gamma"),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("outputs:")
	fmt.Println("  shout  =", value.Encode(run.Outputs["shout"]))
	fmt.Println("  fields =", value.Encode(run.Outputs["fields"]))

	// "Where did fields[1] come from?" — focused on the upper processor.
	focus := lineage.NewFocus("upper")
	res, err := sys.Lineage(core.IndexProj, run.RunID, "", "fields", value.Ix(1), focus)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nlineage of workflow:fields[1], focus {upper}:")
	for _, e := range res.Entries() {
		el, err := e.Element()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s = %s\n", e, value.Encode(el))
	}

	// The same query through the naïve traversal gives the same answer.
	ni, err := sys.Lineage(core.Naive, run.RunID, "", "fields", value.Ix(1), focus)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnaive agrees: %v\n", res.Equal(ni))
}
