// multirun demonstrates §3.4 of the paper: lineage queries that span many
// runs of one workflow — the "parameter sweep" pattern of scientific
// applications. INDEXPROJ traverses the workflow specification once and then
// executes one indexed probe per run, while the naïve algorithm re-traverses
// every run's provenance graph from scratch.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/lineage"
	"repro/internal/store"
	"repro/internal/value"
)

func main() {
	sys, err := core.NewSystem()
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	gen.RegisterTestbed(sys.Registry())

	const l = 40
	wf := gen.Testbed(l)
	if err := sys.RegisterWorkflow(wf); err != nil {
		log.Fatal(err)
	}

	// Sweep the list-size parameter across 10 runs.
	var runIDs []string
	for d := 6; d < 16; d++ {
		run, err := sys.Run(wf.Name, gen.TestbedInputs(d))
		if err != nil {
			log.Fatal(err)
		}
		runIDs = append(runIDs, run.RunID)
	}
	total, err := sys.Store().TotalRecords("")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("swept d=6..15 over testbed l=%d: %d runs, %d trace records\n", l, len(runIDs), total)

	// "Report the lineage of product[2,3] at the generator, across all
	// runs" — one traversal, one probe per run.
	focus := lineage.NewFocus(gen.ListGenName)
	idx := value.Ix(2, 3)

	measure := func(m core.Method) (*lineage.Result, time.Duration, int64) {
		store.ResetQueryCount()
		start := time.Now()
		res, err := sys.LineageMultiRun(m, runIDs, gen.FinalName, "product", idx, focus)
		if err != nil {
			log.Fatal(err)
		}
		return res, time.Since(start), store.ResetQueryCount()
	}

	// Warm both paths once (the paper measures warm caches), then compare.
	measure(core.IndexProj)
	measure(core.Naive)
	ipRes, ipTime, ipQueries := measure(core.IndexProj)
	niRes, niTime, niQueries := measure(core.Naive)

	fmt.Printf("\nmulti-run lin(<%s:product%v>, {%s}) over %d runs:\n", gen.FinalName, idx, gen.ListGenName, len(runIDs))
	fmt.Printf("  INDEXPROJ: %4d trace queries, %8v, %d bindings\n", ipQueries, ipTime, ipRes.Len())
	fmt.Printf("  NI:        %4d trace queries, %8v, %d bindings\n", niQueries, niTime, niRes.Len())
	fmt.Printf("  results equal: %v\n", ipRes.Equal(niRes))
	fmt.Printf("\nNI issues ~%dx more trace queries (one per provenance-graph hop per run\n", niQueries/max64(ipQueries, 1))
	fmt.Println("vs one probe per focus processor per run).")

	for _, e := range ipRes.Entries()[:3] {
		fmt.Println("  e.g.", e)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
