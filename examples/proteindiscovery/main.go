// proteindiscovery runs the reconstruction of the BioAID protein-discovery
// workflow (the paper's long-path "PD" evaluation workflow): a synthetic
// PubMed search feeds a 20+-processor text-mining pipeline. Lineage traces
// each per-abstract evidence list back to its abstract, and shows how the
// final merge collapses granularity.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/lineage"
	"repro/internal/value"
)

func main() {
	sys, err := core.NewSystem()
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	gen.RegisterPD(sys.Registry(), gen.DefaultPubMed())
	wf := gen.ProteinDiscovery()
	if err := sys.RegisterWorkflow(wf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("protein_discovery: %d processors\n", wf.NumNodes())

	run, err := sys.Run("protein_discovery", gen.PDInputs("apoptosis receptor signaling", 5))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndiscovered proteins:")
	for _, p := range run.Outputs["discovered_proteins"].Elems() {
		s, _ := p.StringVal()
		fmt.Println("  -", s)
	}
	records, err := sys.Store().TotalRecords(run.RunID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntrace: %d records\n", records)

	// Per-abstract evidence keeps fine-grained lineage through the whole
	// per-abstract pipeline (12+ processors): evidence[i] <- abstract i.
	fmt.Println("\nlineage of per-abstract evidence, focus = {fetch_abstract}:")
	focus := lineage.NewFocus("fetch_abstract")
	ev := run.Outputs["evidence"]
	for i := 0; i < ev.Len(); i++ {
		res, err := sys.Lineage(core.IndexProj, run.RunID, "", "evidence", value.Ix(i, 0), focus)
		if err != nil {
			log.Fatal(err)
		}
		for _, e := range res.Entries() {
			el, err := e.Element()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  evidence[%d] <- abstract %s\n", i, value.Encode(el))
		}
	}

	// Past the merge, granularity collapses: every final protein depends on
	// the whole per-abstract hit collection.
	res, err := sys.Lineage(core.IndexProj, run.RunID, "", "discovered_proteins", value.Ix(0),
		lineage.NewFocus("merge_abstract_hits"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nlineage of discovered_proteins[0], focus = {merge_abstract_hits}:")
	fmt.Println("  ", res)

	// NI and INDEXPROJ agree, but issue very different numbers of trace
	// queries on this long workflow — the paper's core efficiency claim.
	ni, err := sys.Lineage(core.Naive, run.RunID, "", "evidence", value.Ix(2, 0), focus)
	if err != nil {
		log.Fatal(err)
	}
	ip, err := sys.Lineage(core.IndexProj, run.RunID, "", "evidence", value.Ix(2, 0), focus)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nNI == INDEXPROJ on evidence[2,0]: %v (%d bindings)\n", ni.Equal(ip), ni.Len())
}
