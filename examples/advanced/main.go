// advanced tours the features layered on top of the paper's core algorithm:
// iteration combinator expressions (footnote 7), Zoom-style user views over
// the lineage answer, forward impact queries, durable write-ahead-logged
// provenance, and store integrity verification.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/core"
	"repro/internal/lineage"
	"repro/internal/value"
	"repro/internal/workflow"
)

func main() {
	dir, err := os.MkdirTemp("", "prov-advanced-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// A durable provenance store: every event is write-ahead logged.
	sys, err := core.NewSystem(core.WithStoreDSN("durable:" + filepath.Join(dir, "prov")))
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// The workflow scores gene/weight pairs against a per-pair modifier
	// matrix: genes ⊗ weights ⊙ modifiers — a combinator *expression*
	// (footnote 7), not just a flat cross or dot.
	w := workflow.New("scoring")
	w.AddInput("genes", 1).AddInput("weights", 1).AddInput("modifiers", 2)
	w.AddOutput("scores", 2)
	w.AddOutput("report", 0)
	score := w.AddProcessor("score", "score_one",
		[]workflow.Port{workflow.In("gene", 0), workflow.In("weight", 0), workflow.In("mod", 0)},
		[]workflow.Port{workflow.Out("s", 0)})
	score.Iter = workflow.IterDot(
		workflow.IterCross(workflow.IterLeaf("gene"), workflow.IterLeaf("weight")),
		workflow.IterLeaf("mod"),
	)
	w.AddProcessor("summarize", "summarize",
		[]workflow.Port{workflow.In("all", 2)},
		[]workflow.Port{workflow.Out("text", 0)})
	w.Connect("", "genes", "score", "gene")
	w.Connect("", "weights", "score", "weight")
	w.Connect("", "modifiers", "score", "mod")
	w.Connect("score", "s", "", "scores")
	w.Connect("score", "s", "summarize", "all")
	w.Connect("summarize", "text", "", "report")

	reg := sys.Registry()
	reg.Register("score_one", func(args []value.Value) ([]value.Value, error) {
		g, _ := args[0].StringVal()
		wt, _ := args[1].StringVal()
		m, _ := args[2].StringVal()
		return []value.Value{value.Str(g + "*" + wt + "^" + m)}, nil
	})
	reg.Register("summarize", func(args []value.Value) ([]value.Value, error) {
		return []value.Value{value.Int(int64(args[0].AtomCount()))}, nil
	})
	if err := sys.RegisterWorkflow(w); err != nil {
		log.Fatal(err)
	}

	run, err := sys.Run("scoring", map[string]value.Value{
		"genes":   value.Strs("brca1", "tp53"),
		"weights": value.Strs("lo", "hi"),
		"modifiers": value.List(
			value.Strs("m00", "m01"),
			value.Strs("m10", "m11"),
		),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("scores =", value.Encode(run.Outputs["scores"]))
	fmt.Println("report =", value.Encode(run.Outputs["report"]))

	// Fine-grained lineage through the combinator expression: scores[1][0]
	// depends on gene 1, weight 0, and modifier [1,0] — nothing else.
	focus := lineage.NewFocus("score")
	res, err := sys.Lineage(core.IndexProj, run.RunID, "", "scores", value.Ix(1, 0), focus)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nlineage of scores[1,0] (combinator expression inverted):")
	for _, e := range res.Entries() {
		el, _ := e.Element()
		fmt.Printf("  %s = %s\n", e, value.Encode(el))
	}

	// A Zoom-style view: hide the scoring stage behind one abstraction.
	v := lineage.NewView("analyst")
	if err := v.AddGroup("scoring-stage", "score", "summarize"); err != nil {
		log.Fatal(err)
	}
	if err := v.Validate(w); err != nil {
		log.Fatal(err)
	}
	vres, err := v.LineageThroughView(w, func(f lineage.Focus) (*lineage.Result, error) {
		return sys.Lineage(core.IndexProj, run.RunID, "", "report", value.EmptyIndex, f)
	}, "scoring-stage")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nview-level lineage of the report (group externals only):")
	for _, e := range vres.Entries {
		fmt.Printf("  %s\n", e)
	}

	// Forward impact: everything downstream of gene 0.
	aff, err := sys.Affected(run.RunID, "score", "gene", value.Ix(0), lineage.NewFocus(""))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nworkflow outputs affected by gene[0]: %d bindings\n", aff.Len())
	for _, e := range aff.Entries() {
		if strings.HasPrefix(e.Port, "scores") {
			fmt.Printf("  %s\n", e)
		}
	}

	// Integrity check against the definition (Prop. 1 on every event).
	rep, err := sys.Store().Verify(run.RunID, w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nstore verification:", rep)
}
